//! Strict DER decoding.
//!
//! [`Decoder`] walks a byte slice, enforcing DER's canonical-form rules:
//! definite minimal lengths, canonical INTEGER and BOOLEAN encodings, and
//! full consumption of containers. Anything else is a typed [`Error`] —
//! never a panic — because the study feeds the decoder deliberately broken
//! OCSP responses and classifies the failures.

use crate::{Error, Oid, Result, Tag, Time};

/// Maximum nesting depth the decoder will follow. X.509/OCSP structures
/// nest ~8 deep; 32 leaves comfortable margin while stopping
/// maliciously recursive input.
const MAX_DEPTH: u8 = 32;

/// A DER decoder over a borrowed byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
    depth: u8,
}

impl<'a> Decoder<'a> {
    /// Create a decoder over `input`.
    pub fn new(input: &'a [u8]) -> Decoder<'a> {
        Decoder {
            input,
            pos: 0,
            depth: 0,
        }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// The unconsumed remainder of the input.
    pub fn remaining(&self) -> &'a [u8] {
        &self.input[self.pos..]
    }

    /// Fail with [`Error::TrailingData`] unless the input is exhausted.
    pub fn finish(self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(Error::TrailingData)
        }
    }

    /// Peek at the next tag byte without consuming anything.
    pub fn peek_tag(&self) -> Option<Tag> {
        self.input.get(self.pos).map(|&b| Tag(b))
    }

    /// Read one TLV header, returning `(tag, content_len)` and consuming
    /// the header bytes. Validates DER length canonicality.
    fn read_header(&mut self) -> Result<(Tag, usize)> {
        let tag = Tag(*self.input.get(self.pos).ok_or(Error::Truncated)?);
        if tag.number() == 0x1f {
            // High-tag-number form: not used by any format we speak.
            return Err(Error::InvalidLength);
        }
        self.pos += 1;
        let first = *self.input.get(self.pos).ok_or(Error::Truncated)?;
        self.pos += 1;
        let len = if first < 0x80 {
            usize::from(first)
        } else if first == 0x80 {
            // Indefinite length: forbidden in DER.
            return Err(Error::InvalidLength);
        } else if first == 0xff {
            return Err(Error::InvalidLength);
        } else {
            let n = usize::from(first & 0x7f);
            if n > 8 {
                return Err(Error::InvalidLength);
            }
            let bytes = self
                .input
                .get(self.pos..self.pos + n)
                .ok_or(Error::Truncated)?;
            self.pos += n;
            let mut value: u64 = 0;
            for &b in bytes {
                value = value << 8 | u64::from(b);
            }
            if value < 0x80 || bytes[0] == 0 {
                // Long form used where short would do, or leading zero:
                // non-minimal, rejected by DER.
                return Err(Error::InvalidLength);
            }
            usize::try_from(value).map_err(|_| Error::InvalidLength)?
        };
        if self.input.len() - self.pos < len {
            return Err(Error::LengthOverrun);
        }
        Ok((tag, len))
    }

    /// Read the next TLV of any tag, returning `(tag, content)`.
    pub fn any(&mut self) -> Result<(Tag, &'a [u8])> {
        let (tag, len) = self.read_header()?;
        let content = &self.input[self.pos..self.pos + len];
        self.pos += len;
        Ok((tag, content))
    }

    /// Read the next TLV, requiring `tag`; returns the content octets.
    pub fn expect(&mut self, tag: Tag) -> Result<&'a [u8]> {
        let save = self.pos;
        let (found, len) = self.read_header()?;
        if found != tag {
            self.pos = save;
            return Err(Error::UnexpectedTag {
                expected: tag.0,
                found: found.0,
            });
        }
        let content = &self.input[self.pos..self.pos + len];
        self.pos += len;
        Ok(content)
    }

    /// Skip the next TLV regardless of tag.
    pub fn skip(&mut self) -> Result<()> {
        self.any().map(|_| ())
    }

    /// Return the raw bytes (header + content) of the next TLV without
    /// interpreting it — used to capture `tbs` byte ranges for signing.
    pub fn raw_tlv(&mut self) -> Result<&'a [u8]> {
        let start = self.pos;
        let (_, len) = self.read_header()?;
        let end = self.pos + len;
        self.pos = end;
        Ok(&self.input[start..end])
    }

    fn nested(&self, content: &'a [u8]) -> Result<Decoder<'a>> {
        if self.depth + 1 > MAX_DEPTH {
            return Err(Error::DepthExceeded);
        }
        Ok(Decoder {
            input: content,
            pos: 0,
            depth: self.depth + 1,
        })
    }

    /// Enter a SEQUENCE, returning a decoder over its content.
    pub fn sequence(&mut self) -> Result<Decoder<'a>> {
        let content = self.expect(Tag::SEQUENCE)?;
        self.nested(content)
    }

    /// Enter a SET, returning a decoder over its content.
    pub fn set(&mut self) -> Result<Decoder<'a>> {
        let content = self.expect(Tag::SET)?;
        self.nested(content)
    }

    /// Enter an EXPLICIT `[n]` wrapper.
    pub fn explicit(&mut self, n: u8) -> Result<Decoder<'a>> {
        let content = self.expect(Tag::context(n))?;
        self.nested(content)
    }

    /// Enter an EXPLICIT `[n]` wrapper if it is present.
    pub fn optional_explicit(&mut self, n: u8) -> Result<Option<Decoder<'a>>> {
        if self.peek_tag() == Some(Tag::context(n)) {
            self.explicit(n).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Read an IMPLICIT `[n]` primitive, returning its content octets,
    /// if present.
    pub fn optional_implicit_primitive(&mut self, n: u8) -> Result<Option<&'a [u8]>> {
        if self.peek_tag() == Some(Tag::context_primitive(n)) {
            self.expect(Tag::context_primitive(n)).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Read a BOOLEAN.
    pub fn boolean(&mut self) -> Result<bool> {
        let content = self.expect(Tag::BOOLEAN)?;
        match content {
            [0x00] => Ok(false),
            [0xff] => Ok(true),
            _ => Err(Error::InvalidBoolean),
        }
    }

    /// Read a NULL.
    pub fn null(&mut self) -> Result<()> {
        let content = self.expect(Tag::NULL)?;
        if content.is_empty() {
            Ok(())
        } else {
            Err(Error::InvalidBoolean)
        }
    }

    /// Read an INTEGER into an `i64`.
    pub fn integer_i64(&mut self) -> Result<i64> {
        let content = self.integer_content(Tag::INTEGER)?;
        if content.len() > 8 {
            return Err(Error::ValueOutOfRange);
        }
        let negative = content[0] & 0x80 != 0;
        let mut value: i64 = if negative { -1 } else { 0 };
        for &b in content {
            value = value << 8 | i64::from(b);
        }
        Ok(value)
    }

    /// Read an ENUMERATED into an `i64`.
    pub fn enumerated(&mut self) -> Result<i64> {
        let content = self.integer_content(Tag::ENUMERATED)?;
        if content.len() > 8 {
            return Err(Error::ValueOutOfRange);
        }
        let negative = content[0] & 0x80 != 0;
        let mut value: i64 = if negative { -1 } else { 0 };
        for &b in content {
            value = value << 8 | i64::from(b);
        }
        Ok(value)
    }

    /// Read a non-negative INTEGER as big-endian magnitude bytes with any
    /// sign pad stripped (serial numbers, RSA moduli).
    pub fn integer_unsigned(&mut self) -> Result<&'a [u8]> {
        let content = self.integer_content(Tag::INTEGER)?;
        if content[0] & 0x80 != 0 {
            return Err(Error::ValueOutOfRange); // negative
        }
        if content.len() > 1 && content[0] == 0 {
            Ok(&content[1..])
        } else {
            Ok(content)
        }
    }

    fn integer_content(&mut self, tag: Tag) -> Result<&'a [u8]> {
        let content = self.expect(tag)?;
        if content.is_empty() {
            return Err(Error::NonCanonicalInteger);
        }
        if content.len() > 1 {
            let redundant = (content[0] == 0x00 && content[1] & 0x80 == 0)
                || (content[0] == 0xff && content[1] & 0x80 != 0);
            if redundant {
                return Err(Error::NonCanonicalInteger);
            }
        }
        Ok(content)
    }

    /// Read an OBJECT IDENTIFIER.
    pub fn oid(&mut self) -> Result<Oid> {
        let content = self.expect(Tag::OID)?;
        Oid::from_der_content(content)
    }

    /// Read an OCTET STRING, returning its content.
    pub fn octet_string(&mut self) -> Result<&'a [u8]> {
        self.expect(Tag::OCTET_STRING)
    }

    /// Enter an OCTET STRING whose content is nested DER (X.509 extension
    /// payloads).
    pub fn octet_string_nested(&mut self) -> Result<Decoder<'a>> {
        let content = self.octet_string()?;
        self.nested(content)
    }

    /// Read a BIT STRING, requiring zero unused bits (all our BIT STRINGs
    /// are byte-aligned: signatures, key material).
    pub fn bit_string(&mut self) -> Result<&'a [u8]> {
        let content = self.expect(Tag::BIT_STRING)?;
        match content.split_first() {
            Some((0, rest)) => Ok(rest),
            Some((1..=7, _)) => Err(Error::InvalidBitString),
            _ => Err(Error::InvalidBitString),
        }
    }

    /// Read a UTF8String.
    pub fn utf8_string(&mut self) -> Result<&'a str> {
        let content = self.expect(Tag::UTF8_STRING)?;
        core::str::from_utf8(content).map_err(|_| Error::InvalidString)
    }

    /// Read a PrintableString.
    pub fn printable_string(&mut self) -> Result<&'a str> {
        let content = self.expect(Tag::PRINTABLE_STRING)?;
        core::str::from_utf8(content).map_err(|_| Error::InvalidString)
    }

    /// Read an IA5String.
    pub fn ia5_string(&mut self) -> Result<&'a str> {
        let content = self.expect(Tag::IA5_STRING)?;
        if !content.is_ascii() {
            return Err(Error::InvalidString);
        }
        core::str::from_utf8(content).map_err(|_| Error::InvalidString)
    }

    /// Read any of the three string types we emit.
    pub fn string(&mut self) -> Result<&'a str> {
        match self.peek_tag() {
            Some(Tag::UTF8_STRING) => self.utf8_string(),
            Some(Tag::PRINTABLE_STRING) => self.printable_string(),
            Some(Tag::IA5_STRING) => self.ia5_string(),
            Some(found) => Err(Error::UnexpectedTag {
                expected: Tag::UTF8_STRING.0,
                found: found.0,
            }),
            None => Err(Error::Truncated),
        }
    }

    /// Read a GeneralizedTime.
    pub fn generalized_time(&mut self) -> Result<Time> {
        let content = self.expect(Tag::GENERALIZED_TIME)?;
        let s = core::str::from_utf8(content).map_err(|_| Error::InvalidTime)?;
        Time::parse_generalized(s)
    }

    /// Read either a UTCTime or a GeneralizedTime (the X.509 `Time` CHOICE).
    pub fn x509_time(&mut self) -> Result<Time> {
        match self.peek_tag() {
            Some(Tag::UTC_TIME) => {
                let content = self.expect(Tag::UTC_TIME)?;
                let s = core::str::from_utf8(content).map_err(|_| Error::InvalidTime)?;
                Time::parse_utc_time(s)
            }
            Some(Tag::GENERALIZED_TIME) => self.generalized_time(),
            Some(found) => Err(Error::UnexpectedTag {
                expected: Tag::UTC_TIME.0,
                found: found.0,
            }),
            None => Err(Error::Truncated),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoder;

    #[test]
    fn round_trip_scalars() {
        let mut e = Encoder::new();
        e.boolean(true);
        e.integer_i64(-4242);
        e.null();
        e.utf8_string("caf\u{e9}");
        e.ia5_string("http://ocsp.example.com/");
        let der = e.finish();

        let mut d = Decoder::new(&der);
        assert!(d.boolean().unwrap());
        assert_eq!(d.integer_i64().unwrap(), -4242);
        d.null().unwrap();
        assert_eq!(d.utf8_string().unwrap(), "café");
        assert_eq!(d.ia5_string().unwrap(), "http://ocsp.example.com/");
        d.finish().unwrap();
    }

    #[test]
    fn rejects_trailing_data() {
        let mut e = Encoder::new();
        e.null();
        e.null();
        let der = e.finish();
        let mut d = Decoder::new(&der);
        d.null().unwrap();
        assert_eq!(d.finish(), Err(Error::TrailingData));
    }

    #[test]
    fn rejects_indefinite_length() {
        let mut d = Decoder::new(&[0x30, 0x80, 0x00, 0x00]);
        assert_eq!(d.sequence().map(|_| ()), Err(Error::InvalidLength));
    }

    #[test]
    fn rejects_non_minimal_length() {
        // 0x81 0x05 encodes length 5 in long form where short form suffices.
        let mut d = Decoder::new(&[0x04, 0x81, 0x05, 1, 2, 3, 4, 5]);
        assert_eq!(d.octet_string(), Err(Error::InvalidLength));
    }

    #[test]
    fn rejects_length_overrun() {
        let mut d = Decoder::new(&[0x04, 0x05, 1, 2]);
        assert_eq!(d.octet_string(), Err(Error::LengthOverrun));
    }

    #[test]
    fn rejects_non_canonical_integer() {
        let mut d = Decoder::new(&[0x02, 0x02, 0x00, 0x01]);
        assert_eq!(d.integer_i64(), Err(Error::NonCanonicalInteger));
        let mut d = Decoder::new(&[0x02, 0x02, 0xff, 0xff]);
        assert_eq!(d.integer_i64(), Err(Error::NonCanonicalInteger));
        let mut d = Decoder::new(&[0x02, 0x00]);
        assert_eq!(d.integer_i64(), Err(Error::NonCanonicalInteger));
    }

    #[test]
    fn rejects_negative_serial() {
        let mut e = Encoder::new();
        e.integer_i64(-1);
        let der = e.finish();
        let mut d = Decoder::new(&der);
        assert_eq!(d.integer_unsigned(), Err(Error::ValueOutOfRange));
    }

    #[test]
    fn rejects_sloppy_boolean() {
        // BER allows any nonzero byte for TRUE; DER requires 0xFF.
        let mut d = Decoder::new(&[0x01, 0x01, 0x01]);
        assert_eq!(d.boolean(), Err(Error::InvalidBoolean));
    }

    #[test]
    fn unexpected_tag_leaves_position_unchanged() {
        let mut e = Encoder::new();
        e.integer_i64(7);
        let der = e.finish();
        let mut d = Decoder::new(&der);
        assert!(matches!(d.boolean(), Err(Error::UnexpectedTag { .. })));
        // The INTEGER must still be readable.
        assert_eq!(d.integer_i64().unwrap(), 7);
    }

    #[test]
    fn optional_fields() {
        let mut e = Encoder::new();
        e.explicit(2, |e| e.integer_i64(9));
        let der = e.finish();
        let mut d = Decoder::new(&der);
        assert!(d.optional_explicit(0).unwrap().is_none());
        let mut inner = d.optional_explicit(2).unwrap().unwrap();
        assert_eq!(inner.integer_i64().unwrap(), 9);
    }

    #[test]
    fn raw_tlv_captures_header_and_content() {
        let mut e = Encoder::new();
        e.sequence(|e| e.integer_i64(1));
        let der = e.finish();
        let mut d = Decoder::new(&der);
        assert_eq!(d.raw_tlv().unwrap(), &der[..]);
    }

    #[test]
    fn depth_limit_stops_recursion() {
        // 64 nested sequences of a NULL.
        let mut der = vec![0x05, 0x00];
        for _ in 0..64 {
            let mut e = Encoder::new();
            e.tlv(Tag::SEQUENCE, &der);
            der = e.finish();
        }
        fn descend(d: &mut Decoder) -> Result<()> {
            if d.peek_tag() == Some(Tag::SEQUENCE) {
                let mut inner = d.sequence()?;
                descend(&mut inner)
            } else {
                d.null()
            }
        }
        let mut d = Decoder::new(&der);
        assert_eq!(descend(&mut d), Err(Error::DepthExceeded));
    }

    #[test]
    fn bit_string_unused_bits() {
        let mut d = Decoder::new(&[0x03, 0x02, 0x03, 0xa8]);
        assert_eq!(d.bit_string(), Err(Error::InvalidBitString));
        let mut d = Decoder::new(&[0x03, 0x00]);
        assert_eq!(d.bit_string(), Err(Error::InvalidBitString));
    }

    #[test]
    fn x509_time_choice() {
        let mut e = Encoder::new();
        let t1 = Time::from_civil(2018, 5, 1, 0, 0, 0);
        let t2 = Time::from_civil(2055, 1, 1, 0, 0, 0);
        e.x509_time(t1);
        e.x509_time(t2);
        let der = e.finish();
        // First is UTCTime, second GeneralizedTime.
        assert_eq!(der[0], Tag::UTC_TIME.0);
        let mut d = Decoder::new(&der);
        assert_eq!(d.x509_time().unwrap(), t1);
        assert_eq!(d.x509_time().unwrap(), t2);
    }
}
