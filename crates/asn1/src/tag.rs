//! Tag bytes: class, constructed bit, and the universal tag numbers we use.
//!
//! Only single-byte (low-tag-number, number ≤ 30) tags are supported; no
//! format used by X.509 or OCSP needs the high-tag-number form.

/// The four ASN.1 tag classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Universal class (tag bits `00`): the standard ASN.1 types.
    Universal,
    /// Application class (tag bits `01`).
    Application,
    /// Context-specific class (tag bits `10`): `[n]` tags in schemas.
    Context,
    /// Private class (tag bits `11`).
    Private,
}

impl Class {
    /// The two high bits this class contributes to a tag byte.
    pub fn bits(self) -> u8 {
        match self {
            Class::Universal => 0b0000_0000,
            Class::Application => 0b0100_0000,
            Class::Context => 0b1000_0000,
            Class::Private => 0b1100_0000,
        }
    }

    /// Recover the class from a raw tag byte.
    pub fn from_byte(byte: u8) -> Class {
        match byte >> 6 {
            0 => Class::Universal,
            1 => Class::Application,
            2 => Class::Context,
            _ => Class::Private,
        }
    }
}

/// A single-byte DER tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u8);

impl Tag {
    /// Universal BOOLEAN.
    pub const BOOLEAN: Tag = Tag(0x01);
    /// Universal INTEGER.
    pub const INTEGER: Tag = Tag(0x02);
    /// Universal BIT STRING.
    pub const BIT_STRING: Tag = Tag(0x03);
    /// Universal OCTET STRING.
    pub const OCTET_STRING: Tag = Tag(0x04);
    /// Universal NULL.
    pub const NULL: Tag = Tag(0x05);
    /// Universal OBJECT IDENTIFIER.
    pub const OID: Tag = Tag(0x06);
    /// Universal ENUMERATED.
    pub const ENUMERATED: Tag = Tag(0x0a);
    /// Universal UTF8String.
    pub const UTF8_STRING: Tag = Tag(0x0c);
    /// Universal PrintableString.
    pub const PRINTABLE_STRING: Tag = Tag(0x13);
    /// Universal IA5String (ASCII); used for URIs and DNS names.
    pub const IA5_STRING: Tag = Tag(0x16);
    /// Universal UTCTime (two-digit year).
    pub const UTC_TIME: Tag = Tag(0x17);
    /// Universal GeneralizedTime (four-digit year).
    pub const GENERALIZED_TIME: Tag = Tag(0x18);
    /// Universal SEQUENCE / SEQUENCE OF (always constructed).
    pub const SEQUENCE: Tag = Tag(0x30);
    /// Universal SET / SET OF (always constructed).
    pub const SET: Tag = Tag(0x31);

    /// A context-specific *constructed* tag `[n]`, as used for EXPLICIT
    /// tagging (the wrapper is constructed because it contains a TLV).
    pub fn context(n: u8) -> Tag {
        debug_assert!(n <= 30, "high-tag-number form not supported");
        Tag(Class::Context.bits() | 0b0010_0000 | n)
    }

    /// A context-specific *primitive* tag `[n]`, as used for IMPLICIT
    /// tagging of primitive types.
    pub fn context_primitive(n: u8) -> Tag {
        debug_assert!(n <= 30, "high-tag-number form not supported");
        Tag(Class::Context.bits() | n)
    }

    /// The class encoded in this tag byte.
    pub fn class(self) -> Class {
        Class::from_byte(self.0)
    }

    /// Whether the constructed bit (0x20) is set.
    pub fn is_constructed(self) -> bool {
        self.0 & 0b0010_0000 != 0
    }

    /// The low five tag-number bits.
    pub fn number(self) -> u8 {
        self.0 & 0b0001_1111
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universal_tags_have_expected_bytes() {
        assert_eq!(Tag::SEQUENCE.0, 0x30);
        assert_eq!(Tag::SET.0, 0x31);
        assert_eq!(Tag::INTEGER.0, 0x02);
        assert!(Tag::SEQUENCE.is_constructed());
        assert!(!Tag::INTEGER.is_constructed());
    }

    #[test]
    fn context_tags() {
        assert_eq!(Tag::context(0).0, 0xa0);
        assert_eq!(Tag::context(3).0, 0xa3);
        assert_eq!(Tag::context_primitive(2).0, 0x82);
        assert_eq!(Tag::context(1).class(), Class::Context);
        assert!(Tag::context(1).is_constructed());
        assert!(!Tag::context_primitive(1).is_constructed());
        assert_eq!(Tag::context(7).number(), 7);
    }

    #[test]
    fn class_round_trip() {
        for class in [
            Class::Universal,
            Class::Application,
            Class::Context,
            Class::Private,
        ] {
            assert_eq!(Class::from_byte(class.bits()), class);
        }
    }
}
