//! Property tests: encode/decode symmetry and decoder robustness.

use mustaple_asn1::{Decoder, Encoder, Oid, Time, Value};
use proptest::prelude::*;

proptest! {
    #[test]
    fn integer_i64_round_trips(v in any::<i64>()) {
        let mut e = Encoder::new();
        e.integer_i64(v);
        let der = e.finish();
        let mut d = Decoder::new(&der);
        prop_assert_eq!(d.integer_i64().unwrap(), v);
        d.finish().unwrap();
    }

    #[test]
    fn unsigned_integer_round_trips(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut e = Encoder::new();
        e.integer_unsigned(&bytes);
        let der = e.finish();
        let mut d = Decoder::new(&der);
        let back = d.integer_unsigned().unwrap();
        // Compare magnitudes modulo leading zeros.
        let trimmed: Vec<u8> = {
            let mut s = &bytes[..];
            while s.len() > 1 && s[0] == 0 { s = &s[1..]; }
            if s.is_empty() { vec![0] } else { s.to_vec() }
        };
        prop_assert_eq!(back.to_vec(), trimmed);
    }

    #[test]
    fn octet_string_round_trips(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut e = Encoder::new();
        e.octet_string(&bytes);
        let der = e.finish();
        let mut d = Decoder::new(&der);
        prop_assert_eq!(d.octet_string().unwrap(), &bytes[..]);
    }

    #[test]
    fn utf8_string_round_trips(s in "\\PC{0,80}") {
        let mut e = Encoder::new();
        e.utf8_string(&s);
        let der = e.finish();
        let mut d = Decoder::new(&der);
        prop_assert_eq!(d.utf8_string().unwrap(), s);
    }

    #[test]
    fn oid_round_trips(arcs in proptest::collection::vec(0u64..100_000, 1..10), first in 0u64..3, second in 0u64..40) {
        let mut all = vec![first, second];
        all.extend(arcs);
        let oid = Oid::new(&all);
        let mut e = Encoder::new();
        e.oid(&oid);
        let der = e.finish();
        let mut d = Decoder::new(&der);
        prop_assert_eq!(d.oid().unwrap(), oid);
    }

    #[test]
    fn time_round_trips(secs in 0i64..4_102_444_800) { // through 2100
        let t = Time::from_unix(secs);
        let mut e = Encoder::new();
        e.generalized_time(t);
        let der = e.finish();
        let mut d = Decoder::new(&der);
        prop_assert_eq!(d.generalized_time().unwrap(), t);
    }

    /// Random bytes must never panic the schema-less parser, only error.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Value::parse(&bytes);
    }

    /// Anything the schema-less parser accepts must re-encode to the
    /// identical bytes (DER is canonical).
    #[test]
    fn value_reencode_is_identity(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(v) = Value::parse(&bytes) {
            // Times re-encode canonically only when the source was canonical;
            // skip inputs containing time tags to keep the oracle exact.
            if !bytes.contains(&0x17) && !bytes.contains(&0x18) {
                prop_assert_eq!(v.encode(), bytes);
            }
        }
    }

    /// Truncating a valid encoding must produce an error, not a panic.
    #[test]
    fn truncation_is_detected(v in any::<i64>(), cut in 1usize..3) {
        let mut e = Encoder::new();
        e.sequence(|e| { e.integer_i64(v); e.boolean(true); });
        let der = e.finish();
        let cut = der.len().saturating_sub(cut);
        let mut d = Decoder::new(&der[..cut]);
        let result = d.sequence().and_then(|mut s| {
            s.integer_i64()?;
            s.boolean()?;
            Ok(())
        });
        prop_assert!(result.is_err());
    }
}
