//! Vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! The build container has no crates.io registry, so the workspace
//! vendors the thin slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range`, `gen_bool`, and `fill`. The generator is xoshiro256**
//! seeded through SplitMix64 — not `rand`'s ChaCha12, so streams differ
//! from upstream `rand`, but every consumer in this workspace only
//! requires determinism (same seed, same stream, forever) and solid
//! statistical quality, both of which xoshiro256** provides.
//!
//! Nothing here is cryptographic; the study's crypto lives in
//! `simcrypto` and never draws from this crate for secrecy.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw output blocks.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirroring `rand 0.8`'s extension-trait design).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Fill `dest` (a byte buffer) with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be filled with random bytes via [`Rng::fill`].
pub trait Fill {
    /// Overwrite `self` with bytes drawn from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed. Same seed, same stream, bit for bit.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits of precision, the standard construction.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer below `span` (`span > 0`) via 128-bit widening
/// multiply. The modulo bias is below 2^-64 — irrelevant for simulation.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                start + (unit_f64(rng.next_u64()) as $t) * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// (Blackman & Vigna), state seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(1..=255);
            assert!(w >= 1);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in a small span appear");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.3).abs() < 0.03, "observed {freq}");
    }

    #[test]
    fn fill_fills_all_lengths() {
        let mut rng = StdRng::seed_from_u64(13);
        for len in [0usize, 1, 7, 8, 9, 16, 33] {
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf[..]);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} left all zero");
            }
        }
        let mut arr = [0u8; 16];
        rng.fill(&mut arr);
        assert!(arr.iter().any(|&b| b != 0));
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(17);
        // Regression guard for the span == u64::MAX special case.
        let v: u64 = rng.gen_range(0..=u64::MAX);
        let _ = v;
        let w: u64 = rng.gen_range(1..u64::MAX);
        assert!((1..u64::MAX).contains(&w));
    }
}
