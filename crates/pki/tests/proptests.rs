//! Property tests: certificate and CRL encode/decode round-trips over
//! randomized contents, and decoder robustness against mutation.

use asn1::Time;
use mustaple_pki::extensions::{
    AuthorityInfoAccess, BasicConstraints, CrlDistributionPoints, SubjectAltName, TlsFeature,
};
use mustaple_pki::{
    Certificate, Crl, Name, RevocationReason, RevokedEntry, Serial, TbsCertificate, Validity,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use simcrypto::KeyPair;

fn keypair() -> KeyPair {
    // One shared key pair: generation is the slow part and key contents
    // are not what these properties are about.
    KeyPair::generate(&mut StdRng::seed_from_u64(0xBEEF), 384)
}

fn dns_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,14}[a-z0-9]".prop_map(|s| s)
}

fn arb_serial() -> impl Strategy<Value = Serial> {
    proptest::collection::vec(any::<u8>(), 1..20).prop_map(|b| Serial::from_bytes(&b))
}

fn arb_time() -> impl Strategy<Value = Time> {
    // 2000..2049 keeps UTCTime in range.
    (946_684_800i64..2_524_608_000).prop_map(Time::from_unix)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn certificate_round_trips(
        serial in arb_serial(),
        cn in dns_label(),
        issuer_cn in dns_label(),
        nb in arb_time(),
        lifetime in 86_400i64..(5 * 365 * 86_400),
        must_staple in any::<bool>(),
        ca in any::<bool>(),
        sans in proptest::collection::vec(dns_label(), 0..5),
        ocsp_urls in proptest::collection::vec("[a-z]{1,10}", 0..3),
    ) {
        let kp = keypair();
        let mut extensions = vec![BasicConstraints { ca, path_len: None }.to_extension()];
        if must_staple {
            extensions.push(TlsFeature::must_staple().to_extension());
        }
        if !sans.is_empty() {
            extensions.push(SubjectAltName { dns_names: sans.clone() }.to_extension());
        }
        if !ocsp_urls.is_empty() {
            extensions.push(
                AuthorityInfoAccess {
                    ocsp: ocsp_urls.iter().map(|u| format!("http://{u}.test/")).collect(),
                    ca_issuers: vec![],
                }
                .to_extension(),
            );
            extensions.push(
                CrlDistributionPoints { urls: vec![format!("http://crl.{cn}.test/c.crl")] }
                    .to_extension(),
            );
        }
        let tbs = TbsCertificate {
            serial: serial.clone(),
            issuer: Name::ca("Prop CA", &issuer_cn),
            validity: Validity { not_before: nb, not_after: nb + lifetime },
            subject: Name::common_name(&cn),
            public_key: kp.public().clone(),
            extensions,
        };
        let sig = kp.sign(&tbs.to_der());
        let cert = Certificate::assemble(tbs, sig);
        let der = cert.to_der();
        let back = Certificate::from_der(&der).unwrap();
        prop_assert_eq!(&back, &cert);
        prop_assert!(back.verify_signature(kp.public()));
        prop_assert_eq!(back.has_must_staple(), must_staple);
        prop_assert_eq!(back.is_ca(), ca);
        prop_assert_eq!(back.serial(), &serial);
        prop_assert_eq!(back.dns_names(), sans);
        prop_assert_eq!(back.ocsp_urls().len(), ocsp_urls.len());
        // Re-encode is byte-identical (DER canonicality end to end).
        prop_assert_eq!(back.to_der(), der);
    }

    #[test]
    fn certificate_decoder_survives_mutation(
        cn in dns_label(),
        idx_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let kp = keypair();
        let tbs = TbsCertificate {
            serial: Serial::from_u64(77),
            issuer: Name::ca("Mut CA", "Mut Root"),
            validity: Validity {
                not_before: Time::from_civil(2018, 1, 1, 0, 0, 0),
                not_after: Time::from_civil(2019, 1, 1, 0, 0, 0),
            },
            subject: Name::common_name(&cn),
            public_key: kp.public().clone(),
            extensions: vec![TlsFeature::must_staple().to_extension()],
        };
        let sig = kp.sign(&tbs.to_der());
        let cert = Certificate::assemble(tbs, sig);
        let mut der = cert.to_der();
        let idx = ((der.len() - 1) as f64 * idx_frac) as usize;
        der[idx] ^= xor;
        // Mutated certificates either fail to parse or fail to verify;
        // they never panic and never verify as authentic.
        if let Ok(parsed) = Certificate::from_der(&der) {
            prop_assert!(
                !parsed.verify_signature(kp.public()) || parsed == cert,
                "mutation at {idx} xor {xor:#x} forged a signature"
            );
        }
    }

    #[test]
    fn crl_round_trips(
        entries in proptest::collection::vec(
            (arb_serial(), arb_time(), proptest::option::of(0usize..10)),
            0..40
        ),
        this_update in arb_time(),
        has_next in any::<bool>(),
    ) {
        let kp = keypair();
        let reasons = [
            RevocationReason::Unspecified,
            RevocationReason::KeyCompromise,
            RevocationReason::CaCompromise,
            RevocationReason::AffiliationChanged,
            RevocationReason::Superseded,
            RevocationReason::CessationOfOperation,
            RevocationReason::CertificateHold,
            RevocationReason::RemoveFromCrl,
            RevocationReason::PrivilegeWithdrawn,
            RevocationReason::AaCompromise,
        ];
        // Dedup serials: a CRL keys on them.
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<RevokedEntry> = entries
            .into_iter()
            .filter(|(s, _, _)| seen.insert(s.clone()))
            .map(|(serial, revocation_time, reason_idx)| RevokedEntry {
                serial,
                revocation_time,
                reason: reason_idx.map(|i| reasons[i]),
            })
            .collect();
        let next_update = has_next.then(|| this_update + 7 * 86_400);
        let crl = Crl::build(Name::ca("Prop CA", "Prop Root"), this_update, next_update, entries.clone(), &kp);
        let back = Crl::from_der(&crl.to_der()).unwrap();
        prop_assert_eq!(&back, &crl);
        prop_assert!(back.verify_signature(kp.public()));
        for entry in &entries {
            let found = back.find(&entry.serial).unwrap();
            prop_assert_eq!(found.revocation_time, entry.revocation_time);
            prop_assert_eq!(found.reason, entry.reason);
        }
        prop_assert_eq!(back.next_update(), next_update);
    }

    #[test]
    fn names_round_trip(cn in "\\PC{1,40}", org in "\\PC{1,40}") {
        let name = Name::ca(&org, &cn);
        let der = name.to_der();
        let mut dec = asn1::Decoder::new(&der);
        let back = Name::decode(&mut dec).unwrap();
        prop_assert_eq!(back, name);
    }
}
