//! Trusted root stores.
//!
//! Censys validates certificates against the Apple, Microsoft, and
//! Mozilla NSS root stores and the paper counts a certificate as valid if
//! *any* of the three trusts it (§4, footnote 7). [`RootStore`] models one
//! store; [`RootStore::union`] models the paper's any-of-three rule.

use crate::cert::Certificate;
use crate::name::Name;

/// A set of trusted self-signed root certificates.
#[derive(Debug, Clone, Default)]
pub struct RootStore {
    name: String,
    roots: Vec<Certificate>,
}

impl RootStore {
    /// An empty store with a display name ("Mozilla NSS", …).
    pub fn new(name: &str) -> RootStore {
        RootStore {
            name: name.to_string(),
            roots: Vec::new(),
        }
    }

    /// The store's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a trusted root. Only self-signed CA certificates are accepted.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a self-signed CA certificate — root stores
    /// are built by the simulation, so a violation is a generator bug.
    pub fn add(&mut self, root: Certificate) {
        assert!(
            root.is_self_signed(),
            "root store entries must be self-signed"
        );
        assert!(root.is_ca(), "root store entries must be CA certificates");
        if !self
            .roots
            .iter()
            .any(|r| r.fingerprint() == root.fingerprint())
        {
            self.roots.push(root);
        }
    }

    /// All roots.
    pub fn roots(&self) -> &[Certificate] {
        &self.roots
    }

    /// Number of roots.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Find a root whose subject matches `issuer`.
    pub fn find_issuer(&self, issuer: &Name) -> Option<&Certificate> {
        self.roots.iter().find(|r| r.subject() == issuer)
    }

    /// Whether a specific root (by fingerprint) is present.
    pub fn contains(&self, cert: &Certificate) -> bool {
        self.roots
            .iter()
            .any(|r| r.fingerprint() == cert.fingerprint())
    }

    /// The union of several stores — the paper's "trusted by at least one
    /// of Apple/Microsoft/NSS" rule.
    pub fn union<'a>(stores: impl IntoIterator<Item = &'a RootStore>) -> RootStore {
        let mut out = RootStore::new("union");
        for store in stores {
            for root in &store.roots {
                out.add(root.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use asn1::Time;
    use rand::{rngs::StdRng, SeedableRng};

    fn now() -> Time {
        Time::from_civil(2018, 4, 25, 0, 0, 0)
    }

    fn make_root(seed: u64, cn: &str) -> Certificate {
        let mut rng = StdRng::seed_from_u64(seed);
        CertificateAuthority::new_root(&mut rng, "Org", cn, "x.test", now())
            .certificate()
            .clone()
    }

    #[test]
    fn add_find_and_dedupe() {
        let mut store = RootStore::new("Mozilla NSS");
        let root = make_root(1, "Root A");
        store.add(root.clone());
        store.add(root.clone());
        assert_eq!(store.len(), 1);
        assert!(store.contains(&root));
        assert!(store.find_issuer(root.subject()).is_some());
        assert!(store.find_issuer(&Name::common_name("missing")).is_none());
    }

    #[test]
    fn union_merges_and_dedupes() {
        let shared = make_root(2, "Shared Root");
        let mut apple = RootStore::new("Apple");
        let mut nss = RootStore::new("NSS");
        apple.add(shared.clone());
        apple.add(make_root(3, "Apple Only"));
        nss.add(shared.clone());
        nss.add(make_root(4, "NSS Only"));
        let union = RootStore::union([&apple, &nss]);
        assert_eq!(union.len(), 3);
    }

    #[test]
    #[should_panic(expected = "self-signed")]
    fn rejects_non_root() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ca = CertificateAuthority::new_root(&mut rng, "Org", "Root", "x.test", now());
        let leaf = ca.issue(
            &mut rng,
            &crate::ca::IssueParams::new("leaf.example", now()),
        );
        RootStore::new("strict").add(leaf);
    }
}
