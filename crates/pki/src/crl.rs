//! Certificate Revocation Lists (RFC 5280 §5).
//!
//! CRLs are one of the two revocation channels the paper compares (§5.4):
//! the consistency study downloads CRLs, extracts `(serial, revocation
//! time, reason)` triples, and cross-checks them against OCSP responses.
//! The entry reason-code extension matters because the paper found 15 %
//! of revocations carry a reason in the CRL but none over OCSP.

use crate::name::Name;
use crate::serial::Serial;
use asn1::{Decoder, Encoder, Error, Oid, Result, Tag, Time};
use simcrypto::{KeyPair, PublicKey};

/// RFC 5280 CRLReason codes (shared verbatim with OCSP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RevocationReason {
    /// unspecified (0)
    Unspecified,
    /// keyCompromise (1)
    KeyCompromise,
    /// cACompromise (2)
    CaCompromise,
    /// affiliationChanged (3)
    AffiliationChanged,
    /// superseded (4)
    Superseded,
    /// cessationOfOperation (5)
    CessationOfOperation,
    /// certificateHold (6)
    CertificateHold,
    /// removeFromCRL (8)
    RemoveFromCrl,
    /// privilegeWithdrawn (9)
    PrivilegeWithdrawn,
    /// aACompromise (10)
    AaCompromise,
}

impl RevocationReason {
    /// The wire code.
    pub fn code(self) -> i64 {
        match self {
            RevocationReason::Unspecified => 0,
            RevocationReason::KeyCompromise => 1,
            RevocationReason::CaCompromise => 2,
            RevocationReason::AffiliationChanged => 3,
            RevocationReason::Superseded => 4,
            RevocationReason::CessationOfOperation => 5,
            RevocationReason::CertificateHold => 6,
            RevocationReason::RemoveFromCrl => 8,
            RevocationReason::PrivilegeWithdrawn => 9,
            RevocationReason::AaCompromise => 10,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: i64) -> Result<RevocationReason> {
        Ok(match code {
            0 => RevocationReason::Unspecified,
            1 => RevocationReason::KeyCompromise,
            2 => RevocationReason::CaCompromise,
            3 => RevocationReason::AffiliationChanged,
            4 => RevocationReason::Superseded,
            5 => RevocationReason::CessationOfOperation,
            6 => RevocationReason::CertificateHold,
            8 => RevocationReason::RemoveFromCrl,
            9 => RevocationReason::PrivilegeWithdrawn,
            10 => RevocationReason::AaCompromise,
            _ => return Err(Error::ValueOutOfRange),
        })
    }
}

/// One revoked certificate in a CRL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevokedEntry {
    /// Serial of the revoked certificate.
    pub serial: Serial,
    /// When it was revoked.
    pub revocation_time: Time,
    /// Optional reason code (the paper: most revocations omit it).
    pub reason: Option<RevocationReason>,
}

/// A signed certificate revocation list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crl {
    issuer: Name,
    this_update: Time,
    next_update: Option<Time>,
    entries: Vec<RevokedEntry>,
    tbs_der: Vec<u8>,
    signature: Vec<u8>,
}

impl Crl {
    /// Build and sign a CRL.
    pub fn build(
        issuer: Name,
        this_update: Time,
        next_update: Option<Time>,
        mut entries: Vec<RevokedEntry>,
        signer: &KeyPair,
    ) -> Crl {
        // DER SEQUENCE OF is emitted in list order; keep it deterministic.
        entries.sort_by(|a, b| a.serial.cmp(&b.serial));
        let tbs_der = encode_tbs(&issuer, this_update, next_update, &entries);
        let signature = signer.sign(&tbs_der);
        Crl {
            issuer,
            this_update,
            next_update,
            entries,
            tbs_der,
            signature,
        }
    }

    /// Issuer name.
    pub fn issuer(&self) -> &Name {
        &self.issuer
    }

    /// Start of the validity window.
    pub fn this_update(&self) -> Time {
        self.this_update
    }

    /// End of the validity window (CAs must publish a fresh CRL before it).
    pub fn next_update(&self) -> Option<Time> {
        self.next_update
    }

    /// The revoked entries, sorted by serial.
    pub fn entries(&self) -> &[RevokedEntry] {
        &self.entries
    }

    /// Look up a serial.
    pub fn find(&self, serial: &Serial) -> Option<&RevokedEntry> {
        self.entries
            .binary_search_by(|e| e.serial.cmp(serial))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Whether `serial` is revoked according to this CRL.
    pub fn is_revoked(&self, serial: &Serial) -> bool {
        self.find(serial).is_some()
    }

    /// Whether the CRL is within its validity window at `now`.
    pub fn is_current(&self, now: Time) -> bool {
        self.this_update <= now && self.next_update.is_none_or(|nu| now <= nu)
    }

    /// Verify the CRL signature.
    pub fn verify_signature(&self, issuer_key: &PublicKey) -> bool {
        issuer_key.verify(&self.tbs_der, &self.signature).is_ok()
    }

    /// Encode the full CRL to DER.
    pub fn to_der(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            enc.raw(&self.tbs_der);
            encode_algorithm_id(enc);
            enc.bit_string(&self.signature);
        });
        enc.finish()
    }

    /// Decode a CRL from DER.
    pub fn from_der(der: &[u8]) -> Result<Crl> {
        let mut dec = Decoder::new(der);
        let mut seq = dec.sequence()?;
        let tbs_der = seq.raw_tlv()?.to_vec();
        let (issuer, this_update, next_update, entries) = decode_tbs(&tbs_der)?;
        decode_algorithm_id(&mut seq)?;
        let signature = seq.bit_string()?.to_vec();
        seq.finish()?;
        dec.finish()?;
        Ok(Crl {
            issuer,
            this_update,
            next_update,
            entries,
            tbs_der,
            signature,
        })
    }

    /// Approximate serialized size in bytes — the paper leans on CRLs
    /// being "up to 76 MB" as a motivation for OCSP.
    pub fn size_bytes(&self) -> usize {
        self.to_der().len()
    }
}

fn encode_algorithm_id(enc: &mut Encoder) {
    enc.sequence(|enc| {
        enc.oid(&Oid::SIM_RSA_SHA256);
        enc.null();
    });
}

fn decode_algorithm_id(dec: &mut Decoder<'_>) -> Result<()> {
    let mut seq = dec.sequence()?;
    if seq.oid()? != Oid::SIM_RSA_SHA256 {
        return Err(Error::ValueOutOfRange);
    }
    seq.null()?;
    seq.finish()
}

fn encode_tbs(
    issuer: &Name,
    this_update: Time,
    next_update: Option<Time>,
    entries: &[RevokedEntry],
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.sequence(|enc| {
        enc.integer_i64(1); // version v2
        encode_algorithm_id(enc);
        issuer.encode(enc);
        enc.x509_time(this_update);
        if let Some(nu) = next_update {
            enc.x509_time(nu);
        }
        if !entries.is_empty() {
            enc.sequence(|enc| {
                for entry in entries {
                    enc.sequence(|enc| {
                        entry.serial.encode(enc);
                        enc.x509_time(entry.revocation_time);
                        if let Some(reason) = entry.reason {
                            enc.sequence(|enc| {
                                // crlEntryExtensions: one Extension with
                                // an ENUMERATED payload.
                                enc.sequence(|enc| {
                                    enc.oid(&Oid::CRL_REASON);
                                    let mut payload = Encoder::new();
                                    payload.enumerated(reason.code());
                                    enc.octet_string(&payload.finish());
                                });
                            });
                        }
                    });
                }
            });
        }
    });
    enc.finish()
}

type TbsParts = (Name, Time, Option<Time>, Vec<RevokedEntry>);

fn decode_tbs(tbs_der: &[u8]) -> Result<TbsParts> {
    let mut dec = Decoder::new(tbs_der);
    let mut tbs = dec.sequence()?;
    let version = tbs.integer_i64()?;
    if version != 1 {
        return Err(Error::ValueOutOfRange);
    }
    decode_algorithm_id(&mut tbs)?;
    let issuer = Name::decode(&mut tbs)?;
    let this_update = tbs.x509_time()?;
    let next_update = match tbs.peek_tag() {
        Some(Tag::UTC_TIME) | Some(Tag::GENERALIZED_TIME) => Some(tbs.x509_time()?),
        _ => None,
    };
    let mut entries = Vec::new();
    if tbs.peek_tag() == Some(Tag::SEQUENCE) {
        let mut list = tbs.sequence()?;
        while !list.is_empty() {
            let mut entry = list.sequence()?;
            let serial = Serial::decode(&mut entry)?;
            let revocation_time = entry.x509_time()?;
            let mut reason = None;
            if entry.peek_tag() == Some(Tag::SEQUENCE) {
                let mut exts = entry.sequence()?;
                while !exts.is_empty() {
                    let ext = crate::extensions::Extension::decode(&mut exts)?;
                    if ext.oid == Oid::CRL_REASON {
                        let mut payload = Decoder::new(&ext.payload);
                        reason = Some(RevocationReason::from_code(payload.enumerated()?)?);
                        payload.finish()?;
                    }
                }
            }
            entry.finish()?;
            entries.push(RevokedEntry {
                serial,
                revocation_time,
                reason,
            });
        }
    }
    tbs.finish()?;
    dec.finish()?;
    Ok((issuer, this_update, next_update, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn signer() -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(11), 384)
    }

    fn t(day: u8) -> Time {
        Time::from_civil(2018, 5, day, 0, 0, 0)
    }

    fn sample_entries() -> Vec<RevokedEntry> {
        vec![
            RevokedEntry {
                serial: Serial::from_u64(1000),
                revocation_time: t(2),
                reason: Some(RevocationReason::KeyCompromise),
            },
            RevokedEntry {
                serial: Serial::from_u64(17),
                revocation_time: t(3),
                reason: None,
            },
            RevokedEntry {
                serial: Serial::from_u64(555),
                revocation_time: t(1),
                reason: Some(RevocationReason::Superseded),
            },
        ]
    }

    #[test]
    fn build_lookup_and_round_trip() {
        let kp = signer();
        let crl = Crl::build(
            Name::ca("Example CA", "Example Root"),
            t(5),
            Some(t(12)),
            sample_entries(),
            &kp,
        );
        assert!(crl.is_revoked(&Serial::from_u64(17)));
        assert!(crl.is_revoked(&Serial::from_u64(1000)));
        assert!(!crl.is_revoked(&Serial::from_u64(18)));
        assert_eq!(
            crl.find(&Serial::from_u64(555)).unwrap().reason,
            Some(RevocationReason::Superseded)
        );
        assert!(crl.verify_signature(kp.public()));

        let der = crl.to_der();
        let back = Crl::from_der(&der).unwrap();
        assert_eq!(back, crl);
        assert!(back.verify_signature(kp.public()));
    }

    #[test]
    fn validity_window() {
        let kp = signer();
        let crl = Crl::build(Name::common_name("ca"), t(5), Some(t(12)), vec![], &kp);
        assert!(crl.is_current(t(5)));
        assert!(crl.is_current(t(12)));
        assert!(!crl.is_current(t(13)));
        assert!(!crl.is_current(t(4)));
        // Blank nextUpdate: always current once published.
        let open = Crl::build(Name::common_name("ca"), t(5), None, vec![], &kp);
        assert!(open.is_current(t(5) + 365 * 86_400));
    }

    #[test]
    fn empty_crl_round_trips() {
        let kp = signer();
        let crl = Crl::build(Name::common_name("ca"), t(1), Some(t(8)), vec![], &kp);
        let back = Crl::from_der(&crl.to_der()).unwrap();
        assert!(back.entries().is_empty());
    }

    #[test]
    fn tampered_crl_fails_signature() {
        let kp = signer();
        let crl = Crl::build(
            Name::common_name("ca"),
            t(1),
            Some(t(8)),
            sample_entries(),
            &kp,
        );
        let mut der = crl.to_der();
        let idx = der.len() / 3;
        der[idx] ^= 0x04;
        if let Ok(parsed) = Crl::from_der(&der) {
            assert!(!parsed.verify_signature(kp.public()));
        }
    }

    #[test]
    fn reason_codes_round_trip() {
        for code in [0i64, 1, 2, 3, 4, 5, 6, 8, 9, 10] {
            let r = RevocationReason::from_code(code).unwrap();
            assert_eq!(r.code(), code);
        }
        assert!(RevocationReason::from_code(7).is_err()); // 7 is unassigned
        assert!(RevocationReason::from_code(11).is_err());
    }

    #[test]
    fn entries_sorted_by_serial() {
        let kp = signer();
        let crl = Crl::build(Name::common_name("ca"), t(1), None, sample_entries(), &kp);
        let serials: Vec<_> = crl.entries().iter().map(|e| e.serial.clone()).collect();
        let mut sorted = serials.clone();
        sorted.sort();
        assert_eq!(serials, sorted);
    }

    #[test]
    fn size_grows_with_entries() {
        let kp = signer();
        let small = Crl::build(Name::common_name("ca"), t(1), None, vec![], &kp);
        let entries: Vec<_> = (0..100)
            .map(|i| RevokedEntry {
                serial: Serial::from_u64(i),
                revocation_time: t(1),
                reason: None,
            })
            .collect();
        let big = Crl::build(Name::common_name("ca"), t(1), None, entries, &kp);
        assert!(big.size_bytes() > small.size_bytes() + 100 * 10);
    }
}
