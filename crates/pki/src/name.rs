//! X.501 distinguished names (the `Name` in certificate subject/issuer).
//!
//! We support the RDN attributes the study's corpus uses — common name,
//! organization, country — encoded in the standard
//! `SEQUENCE OF SET OF SEQUENCE { OID, value }` shape with one attribute
//! per RDN (how virtually all web certificates are encoded in practice).

use asn1::{Decoder, Encoder, Error, Oid, Result};
use core::fmt;

/// A distinguished name: an ordered list of (attribute OID, value) pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Name {
    attributes: Vec<(Oid, String)>,
}

impl Name {
    /// An empty name.
    pub fn empty() -> Name {
        Name {
            attributes: Vec::new(),
        }
    }

    /// A name with just a common name — the typical leaf subject.
    pub fn common_name(cn: &str) -> Name {
        Name {
            attributes: vec![(Oid::COMMON_NAME, cn.to_string())],
        }
    }

    /// A CA-style name: organization + common name.
    pub fn ca(org: &str, cn: &str) -> Name {
        Name {
            attributes: vec![
                (Oid::ORGANIZATION, org.to_string()),
                (Oid::COMMON_NAME, cn.to_string()),
            ],
        }
    }

    /// Append an attribute.
    pub fn with(mut self, oid: Oid, value: &str) -> Name {
        self.attributes.push((oid, value.to_string()));
        self
    }

    /// All attributes in order.
    pub fn attributes(&self) -> &[(Oid, String)] {
        &self.attributes
    }

    /// The first common-name attribute, if any.
    pub fn cn(&self) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(oid, _)| *oid == Oid::COMMON_NAME)
            .map(|(_, v)| v.as_str())
    }

    /// Encode into `enc` as a DER Name.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|enc| {
            for (oid, value) in &self.attributes {
                enc.set(|enc| {
                    enc.sequence(|enc| {
                        enc.oid(oid);
                        enc.utf8_string(value);
                    });
                });
            }
        });
    }

    /// Encode to standalone DER bytes.
    pub fn to_der(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Decode a DER Name from `dec`.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Name> {
        let mut seq = dec.sequence()?;
        let mut attributes = Vec::new();
        while !seq.is_empty() {
            let mut set = seq.set()?;
            let mut attr = set.sequence()?;
            let oid = attr.oid()?;
            let value = attr.string()?.to_string();
            attr.finish()?;
            set.finish()?;
            attributes.push((oid, value));
        }
        if attributes.is_empty() {
            // X.501 allows empty names, but nothing in our corpus emits
            // them; treat as missing to surface generator bugs.
            return Err(Error::MissingField("rdnSequence"));
        }
        Ok(Name { attributes })
    }

    /// SHA-256 over the DER encoding — the `issuerNameHash` used in OCSP
    /// CertIDs.
    pub fn hash(&self) -> [u8; 32] {
        simcrypto::sha256(&self.to_der())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (oid, value)) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let label = if *oid == Oid::COMMON_NAME {
                "CN"
            } else if *oid == Oid::ORGANIZATION {
                "O"
            } else if *oid == Oid::COUNTRY {
                "C"
            } else {
                return write!(f, "{oid}={value}");
            };
            write!(f, "{label}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let name = Name::ca("Let's Encrypt", "Let's Encrypt Authority X3").with(Oid::COUNTRY, "US");
        let der = name.to_der();
        let mut dec = Decoder::new(&der);
        let back = Name::decode(&mut dec).unwrap();
        assert_eq!(back, name);
        dec.finish().unwrap();
    }

    #[test]
    fn display_renders_known_attrs() {
        let name = Name::ca("Example Org", "example.com");
        assert_eq!(name.to_string(), "O=Example Org, CN=example.com");
    }

    #[test]
    fn cn_lookup() {
        assert_eq!(Name::common_name("a.example").cn(), Some("a.example"));
        assert_eq!(Name::empty().cn(), None);
    }

    #[test]
    fn hash_is_stable_and_distinct() {
        let a = Name::common_name("a.example");
        let b = Name::common_name("b.example");
        assert_eq!(a.hash(), a.hash());
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn empty_name_rejected_on_decode() {
        let mut enc = Encoder::new();
        enc.sequence(|_| {});
        let der = enc.finish();
        let mut dec = Decoder::new(&der);
        assert!(Name::decode(&mut dec).is_err());
    }
}
