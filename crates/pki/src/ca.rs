//! A certificate authority engine.
//!
//! [`CertificateAuthority`] issues roots, intermediates, leaves, and
//! delegated OCSP-signer certificates, and maintains the revocation
//! database behind the CA's CRL and OCSP responder.
//!
//! The revocation database deliberately keeps **two views** — one feeding
//! the CRL, one feeding OCSP — because §5.4 of the paper found real CAs
//! whose views disagree (Table 1): responders answering `Good` or
//! `Unknown` for CRL-revoked serials, and `ocsp.msocsp.com` reporting
//! revocation times 7 hours to 9 days behind the CRL. Quovadis and
//! Camerfirma confirmed to the authors that they run *two separate
//! databases*; this type models exactly that architecture.

use crate::cert::{Certificate, TbsCertificate, Validity};
use crate::crl::{Crl, RevocationReason, RevokedEntry};
use crate::extensions::{
    AuthorityInfoAccess, BasicConstraints, CrlDistributionPoints, ExtendedKeyUsage, KeyUsage,
    SubjectAltName, TlsFeature,
};
use crate::name::Name;
use crate::serial::Serial;
use asn1::Time;
use rand::Rng;
use simcrypto::KeyPair;
use std::collections::{BTreeMap, BTreeSet};

/// A record in one of the CA's revocation views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevocationRecord {
    /// The revocation time as this view reports it.
    pub time: Time,
    /// The reason as this view reports it (`None` = no reason code).
    pub reason: Option<RevocationReason>,
}

/// Parameters for issuing a leaf certificate.
#[derive(Debug, Clone)]
pub struct IssueParams {
    /// Primary domain (becomes the CN and first SAN entry).
    pub domain: String,
    /// Additional SAN DNS names ("cruise-liner" certificates carry many).
    pub extra_dns_names: Vec<String>,
    /// Validity window.
    pub validity: Validity,
    /// Include the OCSP Must-Staple (TLS Feature) extension.
    pub must_staple: bool,
    /// Include the CA's OCSP URL in an AIA extension.
    pub with_ocsp_url: bool,
    /// Include the CA's CRL URL in a CRL Distribution Points extension.
    /// (Let's Encrypt famously supports OCSP only — no CRL.)
    pub with_crl_url: bool,
}

impl IssueParams {
    /// Sensible defaults: 90-day validity from `now`, OCSP + CRL,
    /// no Must-Staple.
    pub fn new(domain: &str, now: Time) -> IssueParams {
        IssueParams {
            domain: domain.to_string(),
            extra_dns_names: Vec::new(),
            validity: Validity {
                not_before: now,
                not_after: now + 90 * 86_400,
            },
            must_staple: false,
            with_ocsp_url: true,
            with_crl_url: true,
        }
    }

    /// Toggle Must-Staple.
    pub fn must_staple(mut self, yes: bool) -> IssueParams {
        self.must_staple = yes;
        self
    }

    /// Replace the validity window.
    pub fn valid_for(mut self, days: i64) -> IssueParams {
        self.validity.not_after = self.validity.not_before + days * 86_400;
        self
    }

    /// Drop the CRL Distribution Points extension (OCSP-only CAs).
    pub fn without_crl(mut self) -> IssueParams {
        self.with_crl_url = false;
        self
    }

    /// Add SAN names.
    pub fn with_sans(mut self, names: &[&str]) -> IssueParams {
        self.extra_dns_names
            .extend(names.iter().map(|s| s.to_string()));
        self
    }
}

/// A certificate authority: key material, its own certificate, and the
/// issuance/revocation machinery.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    name: Name,
    keypair: KeyPair,
    certificate: Certificate,
    ocsp_url: String,
    crl_url: String,
    /// Shared subject key for issued leaves. Real leaf keys are unique,
    /// but none of the study's measurements depend on leaf-key
    /// uniqueness, and generating one RSA key per simulated certificate
    /// would dominate runtime. CA keys *are* unique.
    leaf_key: KeyPair,
    issued: BTreeMap<Serial, Validity>,
    crl_view: BTreeMap<Serial, RevocationRecord>,
    ocsp_view: BTreeMap<Serial, RevocationRecord>,
    /// Serials the *OCSP database* rejected or lost — the responder
    /// answers `Unknown` for these even though the CA issued (and may
    /// have CRL-revoked) them. Quovadis told the paper's authors exactly
    /// this happens ("rejected upon insertion into the OCSP database due
    /// to max character size"); GlobalSign's gsalphasha2g2 responder
    /// answered Unknown for all 5,375 CRL-revoked serials (Table 1).
    ocsp_unknown: BTreeSet<Serial>,
}

impl CertificateAuthority {
    /// Create a self-signed root CA. `slug` seeds the default OCSP/CRL
    /// URLs (`http://ocsp.<slug>/`, `http://crl.<slug>/latest.crl`).
    pub fn new_root(rng: &mut impl Rng, org: &str, cn: &str, slug: &str, now: Time) -> Self {
        let keypair = KeyPair::generate_default(rng);
        let leaf_key = KeyPair::generate_default(rng);
        let name = Name::ca(org, cn);
        let tbs = TbsCertificate {
            serial: Serial::random(rng),
            issuer: name.clone(),
            subject: name.clone(),
            validity: Validity {
                not_before: now - 86_400,
                not_after: now + 20 * 365 * 86_400,
            },
            public_key: keypair.public().clone(),
            extensions: vec![
                BasicConstraints {
                    ca: true,
                    path_len: None,
                }
                .to_extension(),
                KeyUsage::KEY_CERT_SIGN
                    .union(KeyUsage::CRL_SIGN)
                    .to_extension(),
            ],
        };
        let sig = keypair.sign(&tbs.to_der());
        let certificate = Certificate::assemble(tbs, sig);
        CertificateAuthority {
            name,
            keypair,
            certificate,
            ocsp_url: format!("http://ocsp.{slug}/"),
            crl_url: format!("http://crl.{slug}/latest.crl"),
            leaf_key,
            issued: BTreeMap::new(),
            crl_view: BTreeMap::new(),
            ocsp_view: BTreeMap::new(),
            ocsp_unknown: BTreeSet::new(),
        }
    }

    /// Issue an intermediate CA under this one.
    pub fn issue_intermediate(
        &mut self,
        rng: &mut impl Rng,
        org: &str,
        cn: &str,
        slug: &str,
        now: Time,
    ) -> CertificateAuthority {
        let keypair = KeyPair::generate_default(rng);
        let leaf_key = KeyPair::generate_default(rng);
        let name = Name::ca(org, cn);
        let serial = Serial::random(rng);
        let validity = Validity {
            not_before: now - 86_400,
            not_after: now + 10 * 365 * 86_400,
        };
        let tbs = TbsCertificate {
            serial: serial.clone(),
            issuer: self.name.clone(),
            subject: name.clone(),
            validity,
            public_key: keypair.public().clone(),
            extensions: vec![
                BasicConstraints {
                    ca: true,
                    path_len: Some(0),
                }
                .to_extension(),
                KeyUsage::KEY_CERT_SIGN
                    .union(KeyUsage::CRL_SIGN)
                    .to_extension(),
                AuthorityInfoAccess {
                    ocsp: vec![self.ocsp_url.clone()],
                    ca_issuers: vec![],
                }
                .to_extension(),
            ],
        };
        let sig = self.keypair.sign(&tbs.to_der());
        let certificate = Certificate::assemble(tbs, sig);
        self.issued.insert(serial, validity);
        CertificateAuthority {
            name,
            keypair,
            certificate,
            ocsp_url: format!("http://ocsp.{slug}/"),
            crl_url: format!("http://crl.{slug}/latest.crl"),
            leaf_key,
            issued: BTreeMap::new(),
            crl_view: BTreeMap::new(),
            ocsp_view: BTreeMap::new(),
            ocsp_unknown: BTreeSet::new(),
        }
    }

    /// Issue a leaf certificate.
    pub fn issue(&mut self, rng: &mut impl Rng, params: &IssueParams) -> Certificate {
        let serial = Serial::random(rng);
        let mut extensions = vec![
            BasicConstraints {
                ca: false,
                path_len: None,
            }
            .to_extension(),
            KeyUsage::DIGITAL_SIGNATURE
                .union(KeyUsage::KEY_ENCIPHERMENT)
                .to_extension(),
        ];
        let mut dns = vec![params.domain.clone()];
        dns.extend(params.extra_dns_names.iter().cloned());
        extensions.push(SubjectAltName { dns_names: dns }.to_extension());
        if params.with_ocsp_url {
            extensions.push(
                AuthorityInfoAccess {
                    ocsp: vec![self.ocsp_url.clone()],
                    ca_issuers: vec![],
                }
                .to_extension(),
            );
        }
        if params.with_crl_url {
            extensions.push(
                CrlDistributionPoints {
                    urls: vec![self.crl_url.clone()],
                }
                .to_extension(),
            );
        }
        if params.must_staple {
            extensions.push(TlsFeature::must_staple().to_extension());
        }
        let tbs = TbsCertificate {
            serial: serial.clone(),
            issuer: self.name.clone(),
            subject: Name::common_name(&params.domain),
            validity: params.validity,
            public_key: self.leaf_key.public().clone(),
            extensions,
        };
        let sig = self.keypair.sign(&tbs.to_der());
        self.issued.insert(serial, params.validity);
        Certificate::assemble(tbs, sig)
    }

    /// Issue a delegated OCSP-signer certificate (EKU `id-kp-OCSPSigning`),
    /// returning the certificate and its key pair.
    pub fn issue_ocsp_signer(&mut self, rng: &mut impl Rng, now: Time) -> (Certificate, KeyPair) {
        let keypair = KeyPair::generate_default(rng);
        let serial = Serial::random(rng);
        let validity = Validity {
            not_before: now - 3_600,
            not_after: now + 365 * 86_400,
        };
        let tbs = TbsCertificate {
            serial: serial.clone(),
            issuer: self.name.clone(),
            subject: Name::ca(self.name.cn().unwrap_or("CA"), "OCSP Signer"),
            validity,
            public_key: keypair.public().clone(),
            extensions: vec![
                BasicConstraints {
                    ca: false,
                    path_len: None,
                }
                .to_extension(),
                KeyUsage::DIGITAL_SIGNATURE.to_extension(),
                ExtendedKeyUsage::ocsp_signing().to_extension(),
            ],
        };
        let sig = self.keypair.sign(&tbs.to_der());
        self.issued.insert(serial, validity);
        (Certificate::assemble(tbs, sig), keypair)
    }

    // --- Revocation ---------------------------------------------------------

    /// Revoke in both views simultaneously (the healthy-CA path).
    pub fn revoke(&mut self, serial: &Serial, time: Time, reason: Option<RevocationReason>) {
        let record = RevocationRecord { time, reason };
        self.crl_view.insert(serial.clone(), record.clone());
        self.ocsp_view.insert(serial.clone(), record);
    }

    /// Revoke in both views, but strip the reason code from the OCSP view —
    /// the paper found 99.99 % of reason-code discrepancies are "CRL has a
    /// code, OCSP has none".
    pub fn revoke_reason_in_crl_only(
        &mut self,
        serial: &Serial,
        time: Time,
        reason: RevocationReason,
    ) {
        self.crl_view.insert(
            serial.clone(),
            RevocationRecord {
                time,
                reason: Some(reason),
            },
        );
        self.ocsp_view
            .insert(serial.clone(), RevocationRecord { time, reason: None });
    }

    /// Revoke in the CRL view only — the Table 1 failure mode where OCSP
    /// keeps answering `Good` (or `Unknown`) for a CRL-revoked serial.
    pub fn revoke_crl_only(
        &mut self,
        serial: &Serial,
        time: Time,
        reason: Option<RevocationReason>,
    ) {
        self.crl_view
            .insert(serial.clone(), RevocationRecord { time, reason });
    }

    /// Revoke in both views with the OCSP view's *time* lagging by
    /// `ocsp_lag` seconds — the `ocsp.msocsp.com` behavior (7 h–9 d lag).
    pub fn revoke_with_ocsp_lag(
        &mut self,
        serial: &Serial,
        time: Time,
        reason: Option<RevocationReason>,
        ocsp_lag: i64,
    ) {
        self.crl_view
            .insert(serial.clone(), RevocationRecord { time, reason });
        self.ocsp_view.insert(
            serial.clone(),
            RevocationRecord {
                time: time + ocsp_lag,
                reason,
            },
        );
    }

    /// Write both views directly — the general form behind the scripted
    /// helpers. `None` for a view means "not revoked there".
    pub fn revoke_detailed(
        &mut self,
        serial: &Serial,
        crl: Option<RevocationRecord>,
        ocsp: Option<RevocationRecord>,
    ) {
        match crl {
            Some(rec) => {
                self.crl_view.insert(serial.clone(), rec);
            }
            None => {
                self.crl_view.remove(serial);
            }
        }
        match ocsp {
            Some(rec) => {
                self.ocsp_view.insert(serial.clone(), rec);
            }
            None => {
                self.ocsp_view.remove(serial);
            }
        }
    }

    /// The OCSP view of a serial's status. `None` = not revoked there.
    pub fn ocsp_revocation(&self, serial: &Serial) -> Option<&RevocationRecord> {
        self.ocsp_view.get(serial)
    }

    /// The CRL view of a serial's status.
    pub fn crl_revocation(&self, serial: &Serial) -> Option<&RevocationRecord> {
        self.crl_view.get(serial)
    }

    /// Whether this CA issued `serial`.
    pub fn knows_serial(&self, serial: &Serial) -> bool {
        self.issued.contains_key(serial)
    }

    /// Drop `serial` from the OCSP database only: the responder will
    /// answer `Unknown` (and never `Revoked`) for it, while the CRL view
    /// is untouched — the Table 1 `gsalphasha2g2`/`firmaprofesional`
    /// failure mode.
    pub fn mark_ocsp_unknown(&mut self, serial: &Serial) {
        self.ocsp_unknown.insert(serial.clone());
        self.ocsp_view.remove(serial);
    }

    /// Whether the OCSP database knows `serial` (issued and not lost).
    pub fn ocsp_knows(&self, serial: &Serial) -> bool {
        self.issued.contains_key(serial) && !self.ocsp_unknown.contains(serial)
    }

    /// Validity of an issued certificate.
    pub fn issued_validity(&self, serial: &Serial) -> Option<Validity> {
        self.issued.get(serial).copied()
    }

    /// Number of certificates issued by this CA.
    pub fn issued_count(&self) -> usize {
        self.issued.len()
    }

    /// Generate and sign a CRL from the CRL view. Entries whose
    /// certificates have expired before `now` are dropped, as the paper
    /// notes CAs do to keep CRLs small (its footnote 3).
    pub fn generate_crl(&self, this_update: Time, next_update: Option<Time>) -> Crl {
        let entries = self
            .crl_view
            .iter()
            .filter(|(serial, _)| {
                self.issued
                    .get(*serial)
                    .is_none_or(|validity| validity.not_after >= this_update)
            })
            .map(|(serial, record)| RevokedEntry {
                serial: serial.clone(),
                revocation_time: record.time,
                reason: record.reason,
            })
            .collect();
        Crl::build(
            self.name.clone(),
            this_update,
            next_update,
            entries,
            &self.keypair,
        )
    }

    // --- Accessors ----------------------------------------------------------

    /// The CA's distinguished name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The CA's own certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// The CA's signing key pair.
    pub fn keypair(&self) -> &KeyPair {
        &self.keypair
    }

    /// Default OCSP responder URL baked into issued certificates.
    pub fn ocsp_url(&self) -> &str {
        &self.ocsp_url
    }

    /// Default CRL URL baked into issued certificates.
    pub fn crl_url(&self) -> &str {
        &self.crl_url
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn now() -> Time {
        Time::from_civil(2018, 4, 25, 0, 0, 0)
    }

    fn root() -> CertificateAuthority {
        let mut rng = StdRng::seed_from_u64(100);
        CertificateAuthority::new_root(
            &mut rng,
            "Example Trust",
            "Example Root R1",
            "example-ca.test",
            now(),
        )
    }

    #[test]
    fn root_is_self_signed_ca() {
        let ca = root();
        assert!(ca.certificate().is_self_signed());
        assert!(ca.certificate().is_ca());
    }

    #[test]
    fn issued_leaf_chains_to_root() {
        let mut ca = root();
        let mut rng = StdRng::seed_from_u64(200);
        let leaf = ca.issue(
            &mut rng,
            &IssueParams::new("www.example.com", now()).must_staple(true),
        );
        assert!(leaf.verify_signature(ca.certificate().public_key()));
        assert!(leaf.has_must_staple());
        assert_eq!(leaf.ocsp_urls(), vec![ca.ocsp_url().to_string()]);
        assert_eq!(leaf.crl_urls(), vec![ca.crl_url().to_string()]);
        assert!(leaf.covers_host("www.example.com"));
        assert!(ca.knows_serial(leaf.serial()));
        // DER round-trip survives.
        let back = Certificate::from_der(&leaf.to_der()).unwrap();
        assert!(back.verify_signature(ca.certificate().public_key()));
    }

    #[test]
    fn ocsp_only_issuance_omits_crl() {
        let mut ca = root();
        let mut rng = StdRng::seed_from_u64(201);
        let leaf = ca.issue(
            &mut rng,
            &IssueParams::new("le-style.example", now()).without_crl(),
        );
        assert!(leaf.crl_urls().is_empty());
        assert!(!leaf.ocsp_urls().is_empty());
    }

    #[test]
    fn intermediate_chain() {
        let mut rootca = root();
        let mut rng = StdRng::seed_from_u64(202);
        let mut inter = rootca.issue_intermediate(
            &mut rng,
            "Example Trust",
            "Example CA A1",
            "a1.example-ca.test",
            now(),
        );
        let leaf = inter.issue(&mut rng, &IssueParams::new("site.example", now()));
        assert!(inter
            .certificate()
            .verify_signature(rootca.certificate().public_key()));
        assert!(leaf.verify_signature(inter.certificate().public_key()));
        assert!(!leaf.verify_signature(rootca.certificate().public_key()));
    }

    #[test]
    fn revocation_views_agree_by_default() {
        let mut ca = root();
        let mut rng = StdRng::seed_from_u64(203);
        let leaf = ca.issue(&mut rng, &IssueParams::new("r.example", now()));
        ca.revoke(
            leaf.serial(),
            now() + 10,
            Some(RevocationReason::KeyCompromise),
        );
        let crl_rec = ca.crl_revocation(leaf.serial()).unwrap();
        let ocsp_rec = ca.ocsp_revocation(leaf.serial()).unwrap();
        assert_eq!(crl_rec, ocsp_rec);
        let crl = ca.generate_crl(now() + 20, Some(now() + 20 + 7 * 86_400));
        assert!(crl.is_revoked(leaf.serial()));
        assert!(crl.verify_signature(ca.certificate().public_key()));
    }

    #[test]
    fn crl_only_revocation_diverges() {
        let mut ca = root();
        let mut rng = StdRng::seed_from_u64(204);
        let leaf = ca.issue(&mut rng, &IssueParams::new("tbl1.example", now()));
        ca.revoke_crl_only(leaf.serial(), now(), None);
        assert!(ca.crl_revocation(leaf.serial()).is_some());
        assert!(ca.ocsp_revocation(leaf.serial()).is_none());
    }

    #[test]
    fn ocsp_lag_shifts_time_only() {
        let mut ca = root();
        let mut rng = StdRng::seed_from_u64(205);
        let leaf = ca.issue(&mut rng, &IssueParams::new("lag.example", now()));
        let lag = 9 * 86_400;
        ca.revoke_with_ocsp_lag(leaf.serial(), now(), None, lag);
        let crl_t = ca.crl_revocation(leaf.serial()).unwrap().time;
        let ocsp_t = ca.ocsp_revocation(leaf.serial()).unwrap().time;
        assert_eq!(ocsp_t - crl_t, lag);
    }

    #[test]
    fn reason_stripped_from_ocsp_view() {
        let mut ca = root();
        let mut rng = StdRng::seed_from_u64(206);
        let leaf = ca.issue(&mut rng, &IssueParams::new("reason.example", now()));
        ca.revoke_reason_in_crl_only(leaf.serial(), now(), RevocationReason::Superseded);
        assert_eq!(
            ca.crl_revocation(leaf.serial()).unwrap().reason,
            Some(RevocationReason::Superseded)
        );
        assert_eq!(ca.ocsp_revocation(leaf.serial()).unwrap().reason, None);
    }

    #[test]
    fn expired_certs_drop_out_of_crl() {
        let mut ca = root();
        let mut rng = StdRng::seed_from_u64(207);
        let leaf = ca.issue(
            &mut rng,
            &IssueParams::new("exp.example", now()).valid_for(10),
        );
        ca.revoke(leaf.serial(), now() + 5 * 86_400, None);
        // Before expiry: present.
        let crl = ca.generate_crl(now() + 6 * 86_400, None);
        assert!(crl.is_revoked(leaf.serial()));
        // After expiry: dropped.
        let crl = ca.generate_crl(now() + 30 * 86_400, None);
        assert!(!crl.is_revoked(leaf.serial()));
    }

    #[test]
    fn ocsp_signer_is_delegated() {
        let mut ca = root();
        let mut rng = StdRng::seed_from_u64(208);
        let (signer_cert, signer_key) = ca.issue_ocsp_signer(&mut rng, now());
        assert!(signer_cert.allows_ocsp_signing());
        assert!(signer_cert.verify_signature(ca.certificate().public_key()));
        assert_eq!(signer_cert.public_key(), signer_key.public());
    }

    #[test]
    fn cruise_liner_certificate() {
        let mut ca = root();
        let mut rng = StdRng::seed_from_u64(209);
        let params = IssueParams::new("shared.example", now()).with_sans(&[
            "a.example",
            "b.example",
            "c.example",
        ]);
        let leaf = ca.issue(&mut rng, &params);
        assert_eq!(leaf.dns_names().len(), 4);
        assert!(leaf.covers_host("b.example"));
    }
}
