//! X.509 v3 extensions.
//!
//! A raw [`Extension`] is `(OID, critical, DER payload)`; typed
//! representations convert to and from it. The set implemented here is
//! exactly what the paper's pipeline reads:
//!
//! * **TLS Feature** (`1.3.6.1.5.5.7.1.24`) — OCSP Must-Staple, the
//!   subject of the study;
//! * **Authority Information Access** — where the OCSP responder URL
//!   lives (§4 and §5 key off this);
//! * **CRL Distribution Points** — where the CRL lives (§5.4);
//! * **Basic Constraints**, **Key Usage**, **Extended Key Usage** — chain
//!   validation and OCSP-signing delegation;
//! * **Subject Alternative Name** — domain matching, including the
//!   "cruise-liner" multi-domain certificates of §7.1.

use asn1::{Decoder, Encoder, Error, Oid, Result, Tag};

/// The TLS feature number for `status_request` (RFC 7633): requesting
/// this feature in a certificate is what "OCSP Must-Staple" means.
pub const FEATURE_STATUS_REQUEST: u16 = 5;
/// The TLS feature number for `status_request_v2` (RFC 6961 multi-staple).
pub const FEATURE_STATUS_REQUEST_V2: u16 = 17;

/// A raw extension: OID, criticality, and the DER payload that lives
/// inside the extension's OCTET STRING.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extension {
    /// The extension's object identifier.
    pub oid: Oid,
    /// The criticality flag (clients must reject unknown critical
    /// extensions).
    pub critical: bool,
    /// DER-encoded payload (content of the extnValue OCTET STRING).
    pub payload: Vec<u8>,
}

impl Extension {
    /// Encode as the standard `Extension ::= SEQUENCE` shape.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|enc| {
            enc.oid(&self.oid);
            if self.critical {
                enc.boolean(true); // DEFAULT FALSE is omitted when false
            }
            enc.octet_string(&self.payload);
        });
    }

    /// Decode one extension.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Extension> {
        let mut seq = dec.sequence()?;
        let oid = seq.oid()?;
        let critical = if seq.peek_tag() == Some(Tag::BOOLEAN) {
            seq.boolean()?
        } else {
            false
        };
        let payload = seq.octet_string()?.to_vec();
        seq.finish()?;
        Ok(Extension {
            oid,
            critical,
            payload,
        })
    }
}

// ---------------------------------------------------------------------------

/// The TLS Feature extension (RFC 7633). `features` containing
/// [`FEATURE_STATUS_REQUEST`] is OCSP Must-Staple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlsFeature {
    /// The requested TLS feature numbers.
    pub features: Vec<u16>,
}

impl TlsFeature {
    /// The canonical Must-Staple extension: `status_request` only.
    pub fn must_staple() -> TlsFeature {
        TlsFeature {
            features: vec![FEATURE_STATUS_REQUEST],
        }
    }

    /// Whether `status_request` is among the features.
    pub fn requires_staple(&self) -> bool {
        self.features.contains(&FEATURE_STATUS_REQUEST)
    }

    /// Build the raw extension.
    pub fn to_extension(&self) -> Extension {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            for &f in &self.features {
                enc.integer_i64(i64::from(f));
            }
        });
        Extension {
            oid: Oid::TLS_FEATURE,
            critical: false,
            payload: enc.finish(),
        }
    }

    /// Parse from a raw extension payload.
    pub fn from_extension(ext: &Extension) -> Result<TlsFeature> {
        let mut dec = Decoder::new(&ext.payload);
        let mut seq = dec.sequence()?;
        let mut features = Vec::new();
        while !seq.is_empty() {
            let v = seq.integer_i64()?;
            let f = u16::try_from(v).map_err(|_| Error::ValueOutOfRange)?;
            features.push(f);
        }
        dec.finish()?;
        Ok(TlsFeature { features })
    }
}

// ---------------------------------------------------------------------------

/// Basic Constraints: is this a CA certificate, and how deep may it chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicConstraints {
    /// Whether the subject may issue certificates.
    pub ca: bool,
    /// Optional maximum number of intermediate certificates below this one.
    pub path_len: Option<u32>,
}

impl BasicConstraints {
    /// Build the raw extension (critical, per RFC 5280 for CAs).
    pub fn to_extension(&self) -> Extension {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            if self.ca {
                enc.boolean(true);
            }
            if let Some(n) = self.path_len {
                enc.integer_i64(i64::from(n));
            }
        });
        Extension {
            oid: Oid::BASIC_CONSTRAINTS,
            critical: true,
            payload: enc.finish(),
        }
    }

    /// Parse from a raw extension payload.
    pub fn from_extension(ext: &Extension) -> Result<BasicConstraints> {
        let mut dec = Decoder::new(&ext.payload);
        let mut seq = dec.sequence()?;
        let ca = if seq.peek_tag() == Some(Tag::BOOLEAN) {
            seq.boolean()?
        } else {
            false
        };
        let path_len = if seq.peek_tag() == Some(Tag::INTEGER) {
            Some(u32::try_from(seq.integer_i64()?).map_err(|_| Error::ValueOutOfRange)?)
        } else {
            None
        };
        seq.finish()?;
        dec.finish()?;
        Ok(BasicConstraints { ca, path_len })
    }
}

// ---------------------------------------------------------------------------

/// Key Usage bits (RFC 5280 §4.2.1.3), stored as a mask with bit *i* being
/// the named bit *i* of the ASN.1 BIT STRING.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeyUsage(pub u16);

impl KeyUsage {
    /// `digitalSignature` (bit 0).
    pub const DIGITAL_SIGNATURE: KeyUsage = KeyUsage(1 << 0);
    /// `keyEncipherment` (bit 2).
    pub const KEY_ENCIPHERMENT: KeyUsage = KeyUsage(1 << 2);
    /// `keyCertSign` (bit 5) — CA certificates.
    pub const KEY_CERT_SIGN: KeyUsage = KeyUsage(1 << 5);
    /// `cRLSign` (bit 6) — CRL issuers.
    pub const CRL_SIGN: KeyUsage = KeyUsage(1 << 6);

    /// Union of two usage sets.
    pub fn union(self, other: KeyUsage) -> KeyUsage {
        KeyUsage(self.0 | other.0)
    }

    /// Whether every bit of `other` is present.
    pub fn contains(self, other: KeyUsage) -> bool {
        self.0 & other.0 == other.0
    }

    /// Build the raw extension (critical, as in practice).
    pub fn to_extension(&self) -> Extension {
        // Named-bit-list DER: trailing zero bits are trimmed; bit i of the
        // list is bit (7 - i%8) of content byte i/8.
        let highest = (0..16).rev().find(|&i| self.0 >> i & 1 == 1);
        let content = match highest {
            None => vec![0u8],
            Some(h) => {
                let nbits = h as usize + 1;
                let nbytes = nbits.div_ceil(8);
                let unused = nbytes * 8 - nbits;
                let mut bytes = vec![unused as u8];
                bytes.resize(1 + nbytes, 0);
                for i in 0..nbits {
                    if self.0 >> i & 1 == 1 {
                        bytes[1 + i / 8] |= 0x80 >> (i % 8);
                    }
                }
                bytes
            }
        };
        let mut enc = Encoder::new();
        enc.tlv(Tag::BIT_STRING, &content);
        Extension {
            oid: Oid::KEY_USAGE,
            critical: true,
            payload: enc.finish(),
        }
    }

    /// Parse from a raw extension payload.
    pub fn from_extension(ext: &Extension) -> Result<KeyUsage> {
        let mut dec = Decoder::new(&ext.payload);
        let content = dec.expect(Tag::BIT_STRING)?;
        dec.finish()?;
        let (&unused, bits) = content.split_first().ok_or(Error::InvalidBitString)?;
        if unused > 7 || (bits.is_empty() && unused != 0) {
            return Err(Error::InvalidBitString);
        }
        let mut mask: u16 = 0;
        for (byte_idx, &byte) in bits.iter().enumerate() {
            for bit in 0..8 {
                if byte & (0x80 >> bit) != 0 {
                    let i = byte_idx * 8 + bit;
                    if i >= 16 {
                        return Err(Error::ValueOutOfRange);
                    }
                    mask |= 1 << i;
                }
            }
        }
        Ok(KeyUsage(mask))
    }
}

// ---------------------------------------------------------------------------

/// Authority Information Access: where to reach the issuing CA's services.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuthorityInfoAccess {
    /// OCSP responder URLs (`id-ad-ocsp`). The paper treats presence of at
    /// least one of these as "supports OCSP".
    pub ocsp: Vec<String>,
    /// CA certificate URLs (`id-ad-caIssuers`).
    pub ca_issuers: Vec<String>,
}

/// GeneralName CHOICE tag for uniformResourceIdentifier.
const GENERAL_NAME_URI: u8 = 6;
/// GeneralName CHOICE tag for dNSName.
const GENERAL_NAME_DNS: u8 = 2;

impl AuthorityInfoAccess {
    /// Build the raw extension.
    pub fn to_extension(&self) -> Extension {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            for url in &self.ocsp {
                enc.sequence(|enc| {
                    enc.oid(&Oid::AD_OCSP);
                    enc.implicit_primitive(GENERAL_NAME_URI, url.as_bytes());
                });
            }
            for url in &self.ca_issuers {
                enc.sequence(|enc| {
                    enc.oid(&Oid::AD_CA_ISSUERS);
                    enc.implicit_primitive(GENERAL_NAME_URI, url.as_bytes());
                });
            }
        });
        Extension {
            oid: Oid::AUTHORITY_INFO_ACCESS,
            critical: false,
            payload: enc.finish(),
        }
    }

    /// Parse from a raw extension payload.
    pub fn from_extension(ext: &Extension) -> Result<AuthorityInfoAccess> {
        let mut dec = Decoder::new(&ext.payload);
        let mut seq = dec.sequence()?;
        let mut aia = AuthorityInfoAccess::default();
        while !seq.is_empty() {
            let mut desc = seq.sequence()?;
            let method = desc.oid()?;
            let loc = desc
                .optional_implicit_primitive(GENERAL_NAME_URI)?
                .ok_or(Error::MissingField("accessLocation"))?;
            let url = core::str::from_utf8(loc)
                .map_err(|_| Error::InvalidString)?
                .to_string();
            desc.finish()?;
            if method == Oid::AD_OCSP {
                aia.ocsp.push(url);
            } else if method == Oid::AD_CA_ISSUERS {
                aia.ca_issuers.push(url);
            }
            // Unknown access methods are ignored, as clients do.
        }
        dec.finish()?;
        Ok(aia)
    }
}

// ---------------------------------------------------------------------------

/// CRL Distribution Points, reduced to the URI form every real CA uses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CrlDistributionPoints {
    /// CRL URLs.
    pub urls: Vec<String>,
}

impl CrlDistributionPoints {
    /// Build the raw extension.
    pub fn to_extension(&self) -> Extension {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            for url in &self.urls {
                // DistributionPoint ::= SEQUENCE { distributionPoint [0]
                //   DistributionPointName { fullName [0] GeneralNames } }
                enc.sequence(|enc| {
                    enc.explicit(0, |enc| {
                        enc.implicit_constructed(0, |enc| {
                            enc.implicit_primitive(GENERAL_NAME_URI, url.as_bytes());
                        });
                    });
                });
            }
        });
        Extension {
            oid: Oid::CRL_DISTRIBUTION_POINTS,
            critical: false,
            payload: enc.finish(),
        }
    }

    /// Parse from a raw extension payload.
    pub fn from_extension(ext: &Extension) -> Result<CrlDistributionPoints> {
        let mut dec = Decoder::new(&ext.payload);
        let mut seq = dec.sequence()?;
        let mut out = CrlDistributionPoints::default();
        while !seq.is_empty() {
            let mut dp = seq.sequence()?;
            if let Some(mut dpn) = dp.optional_explicit(0)? {
                let mut names = dpn.explicit(0)?;
                while !names.is_empty() {
                    if let Some(uri) = names.optional_implicit_primitive(GENERAL_NAME_URI)? {
                        let url = core::str::from_utf8(uri)
                            .map_err(|_| Error::InvalidString)?
                            .to_string();
                        out.urls.push(url);
                    } else {
                        names.skip()?;
                    }
                }
            }
        }
        dec.finish()?;
        Ok(out)
    }
}

// ---------------------------------------------------------------------------

/// Subject Alternative Name, reduced to DNS names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SubjectAltName {
    /// DNS names covered by the certificate.
    pub dns_names: Vec<String>,
}

impl SubjectAltName {
    /// Build the raw extension.
    pub fn to_extension(&self) -> Extension {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            for name in &self.dns_names {
                enc.implicit_primitive(GENERAL_NAME_DNS, name.as_bytes());
            }
        });
        Extension {
            oid: Oid::SUBJECT_ALT_NAME,
            critical: false,
            payload: enc.finish(),
        }
    }

    /// Parse from a raw extension payload.
    pub fn from_extension(ext: &Extension) -> Result<SubjectAltName> {
        let mut dec = Decoder::new(&ext.payload);
        let mut seq = dec.sequence()?;
        let mut out = SubjectAltName::default();
        while !seq.is_empty() {
            if let Some(dns) = seq.optional_implicit_primitive(GENERAL_NAME_DNS)? {
                out.dns_names.push(
                    core::str::from_utf8(dns)
                        .map_err(|_| Error::InvalidString)?
                        .to_string(),
                );
            } else {
                seq.skip()?;
            }
        }
        dec.finish()?;
        Ok(out)
    }

    /// Whether `host` is covered, with single-label wildcard support.
    pub fn covers(&self, host: &str) -> bool {
        self.dns_names.iter().any(|pattern| {
            if let Some(suffix) = pattern.strip_prefix("*.") {
                host.split_once('.')
                    .is_some_and(|(_, rest)| rest.eq_ignore_ascii_case(suffix))
            } else {
                pattern.eq_ignore_ascii_case(host)
            }
        })
    }
}

// ---------------------------------------------------------------------------

/// Extended Key Usage: a list of purpose OIDs. The one the study cares
/// about is [`Oid::KP_OCSP_SIGNING`] (delegated OCSP responders).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExtendedKeyUsage {
    /// The purpose OIDs.
    pub oids: Vec<Oid>,
}

impl ExtendedKeyUsage {
    /// An EKU granting OCSP signing delegation.
    pub fn ocsp_signing() -> ExtendedKeyUsage {
        ExtendedKeyUsage {
            oids: vec![Oid::KP_OCSP_SIGNING],
        }
    }

    /// Whether OCSP signing is among the purposes.
    pub fn allows_ocsp_signing(&self) -> bool {
        self.oids.contains(&Oid::KP_OCSP_SIGNING)
    }

    /// Build the raw extension.
    pub fn to_extension(&self) -> Extension {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            for oid in &self.oids {
                enc.oid(oid);
            }
        });
        Extension {
            oid: Oid::EXT_KEY_USAGE,
            critical: false,
            payload: enc.finish(),
        }
    }

    /// Parse from a raw extension payload.
    pub fn from_extension(ext: &Extension) -> Result<ExtendedKeyUsage> {
        let mut dec = Decoder::new(&ext.payload);
        let mut seq = dec.sequence()?;
        let mut oids = Vec::new();
        while !seq.is_empty() {
            oids.push(seq.oid()?);
        }
        dec.finish()?;
        Ok(ExtendedKeyUsage { oids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(ext: &Extension) -> Extension {
        let mut enc = Encoder::new();
        ext.encode(&mut enc);
        let der = enc.finish();
        let mut dec = Decoder::new(&der);
        let back = Extension::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        back
    }

    #[test]
    fn tls_feature_must_staple() {
        let ms = TlsFeature::must_staple();
        assert!(ms.requires_staple());
        let ext = ms.to_extension();
        assert_eq!(ext.oid, Oid::TLS_FEATURE);
        let back = TlsFeature::from_extension(&round_trip(&ext)).unwrap();
        assert_eq!(back, ms);
    }

    #[test]
    fn tls_feature_without_status_request() {
        let f = TlsFeature {
            features: vec![FEATURE_STATUS_REQUEST_V2],
        };
        assert!(!f.requires_staple());
    }

    #[test]
    fn basic_constraints_round_trip() {
        for bc in [
            BasicConstraints {
                ca: true,
                path_len: Some(0),
            },
            BasicConstraints {
                ca: true,
                path_len: None,
            },
            BasicConstraints {
                ca: false,
                path_len: None,
            },
        ] {
            let back = BasicConstraints::from_extension(&round_trip(&bc.to_extension())).unwrap();
            assert_eq!(back, bc);
        }
    }

    #[test]
    fn key_usage_round_trip_and_bit_semantics() {
        let ku = KeyUsage::DIGITAL_SIGNATURE
            .union(KeyUsage::KEY_CERT_SIGN)
            .union(KeyUsage::CRL_SIGN);
        let ext = ku.to_extension();
        let back = KeyUsage::from_extension(&round_trip(&ext)).unwrap();
        assert_eq!(back, ku);
        assert!(back.contains(KeyUsage::KEY_CERT_SIGN));
        assert!(!back.contains(KeyUsage::KEY_ENCIPHERMENT));
        // digitalSignature alone uses a single byte with 7 unused bits.
        let ds = KeyUsage::DIGITAL_SIGNATURE.to_extension();
        assert_eq!(ds.payload, vec![0x03, 0x02, 0x07, 0x80]);
    }

    #[test]
    fn aia_round_trip() {
        let aia = AuthorityInfoAccess {
            ocsp: vec!["http://ocsp.example-ca.com".into()],
            ca_issuers: vec!["http://certs.example-ca.com/ca.der".into()],
        };
        let back = AuthorityInfoAccess::from_extension(&round_trip(&aia.to_extension())).unwrap();
        assert_eq!(back, aia);
    }

    #[test]
    fn aia_multiple_ocsp_urls() {
        // The paper found 6,308 certificates with multiple OCSP responders.
        let aia = AuthorityInfoAccess {
            ocsp: vec!["http://ocsp1.ca.com".into(), "http://ocsp2.ca.com".into()],
            ca_issuers: vec![],
        };
        let back = AuthorityInfoAccess::from_extension(&aia.to_extension()).unwrap();
        assert_eq!(back.ocsp.len(), 2);
    }

    #[test]
    fn crl_dp_round_trip() {
        let dp = CrlDistributionPoints {
            urls: vec!["http://crl.example-ca.com/r1.crl".into()],
        };
        let back = CrlDistributionPoints::from_extension(&round_trip(&dp.to_extension())).unwrap();
        assert_eq!(back, dp);
    }

    #[test]
    fn san_round_trip_and_wildcards() {
        let san = SubjectAltName {
            dns_names: vec!["example.com".into(), "*.example.com".into()],
        };
        let back = SubjectAltName::from_extension(&round_trip(&san.to_extension())).unwrap();
        assert_eq!(back, san);
        assert!(back.covers("example.com"));
        assert!(back.covers("www.example.com"));
        assert!(!back.covers("a.b.example.com"));
        assert!(!back.covers("example.org"));
    }

    #[test]
    fn eku_ocsp_signing() {
        let eku = ExtendedKeyUsage::ocsp_signing();
        assert!(eku.allows_ocsp_signing());
        let back = ExtendedKeyUsage::from_extension(&round_trip(&eku.to_extension())).unwrap();
        assert_eq!(back, eku);
    }

    #[test]
    fn criticality_default_is_false() {
        let ext = Extension {
            oid: Oid::TLS_FEATURE,
            critical: false,
            payload: vec![0x30, 0x00],
        };
        let mut enc = Encoder::new();
        ext.encode(&mut enc);
        let der = enc.finish();
        // No BOOLEAN byte inside: SEQ(OID, OCTETS)
        assert!(!der.windows(3).any(|w| w == [0x01, 0x01, 0x00]));
        let mut dec = Decoder::new(&der);
        assert!(!Extension::decode(&mut dec).unwrap().critical);
    }
}
