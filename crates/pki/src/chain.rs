//! Client-side certificate chain validation.
//!
//! Implements the checks the paper's background section lists as the
//! client's job (§2.1): correct signatures along the chain, validity
//! windows, CA constraints, and host coverage. Revocation is *not*
//! checked here — that is the whole subject of the study and lives in the
//! OCSP/browser crates, which layer it on top of this.

use crate::cert::Certificate;
use crate::store::RootStore;
use asn1::Time;
use core::fmt;

/// Why a chain failed to validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The presented chain was empty.
    EmptyChain,
    /// No root in the store matches the last certificate's issuer.
    UnknownRoot,
    /// A signature along the chain failed to verify. The index is the
    /// certificate whose signature was bad (0 = leaf).
    BadSignature(usize),
    /// A certificate was outside its validity window at the given index.
    Expired(usize),
    /// A non-CA certificate appeared in an issuing position.
    NotACa(usize),
    /// A path-length constraint was violated at the given index.
    PathLenExceeded(usize),
    /// An intermediate's subject does not match the next certificate's
    /// issuer.
    IssuerMismatch(usize),
    /// The leaf does not cover the requested host name.
    HostMismatch,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::EmptyChain => write!(f, "empty certificate chain"),
            ChainError::UnknownRoot => write!(f, "chain does not terminate at a trusted root"),
            ChainError::BadSignature(i) => write!(f, "bad signature on chain element {i}"),
            ChainError::Expired(i) => write!(f, "chain element {i} outside validity window"),
            ChainError::NotACa(i) => write!(f, "chain element {i} is not a CA"),
            ChainError::PathLenExceeded(i) => {
                write!(f, "path length constraint violated at element {i}")
            }
            ChainError::IssuerMismatch(i) => {
                write!(
                    f,
                    "issuer of element {i} does not match subject of element {}",
                    i + 1
                )
            }
            ChainError::HostMismatch => write!(f, "leaf does not cover the requested host"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Validate `chain` (leaf first, root-ward after) against `roots` at time
/// `now`, for host `host` (pass `None` to skip host checking).
///
/// The chain may or may not include the root itself; the issuer of the
/// final element is looked up in the store either way.
pub fn validate_chain(
    chain: &[Certificate],
    roots: &RootStore,
    now: Time,
    host: Option<&str>,
) -> Result<(), ChainError> {
    if chain.is_empty() {
        return Err(ChainError::EmptyChain);
    }

    // Trim a self-signed root off the end if the server sent one; we only
    // trust what is in the store.
    let effective: &[Certificate] = if chain.len() > 1 && chain[chain.len() - 1].is_self_signed() {
        &chain[..chain.len() - 1]
    } else {
        chain
    };
    if effective.is_empty() {
        return Err(ChainError::EmptyChain);
    }

    // Validity windows.
    for (i, cert) in effective.iter().enumerate() {
        if !cert.validity().contains(now) {
            return Err(ChainError::Expired(i));
        }
    }

    // Issuer/subject linkage + intermediate constraints.
    for i in 0..effective.len() - 1 {
        let cert = &effective[i];
        let issuer = &effective[i + 1];
        if cert.issuer() != issuer.subject() {
            return Err(ChainError::IssuerMismatch(i));
        }
        if !issuer.is_ca() {
            return Err(ChainError::NotACa(i + 1));
        }
        // path_len counts intermediates *below* the constrained cert;
        // element i+1 has i intermediates below it in this chain.
        if let Some(limit) = issuer.path_len() {
            let below = i; // number of CA certs between issuer and leaf
            if below > limit as usize {
                return Err(ChainError::PathLenExceeded(i + 1));
            }
        }
        if !cert.verify_signature(issuer.public_key()) {
            return Err(ChainError::BadSignature(i));
        }
    }

    // Terminate at a trusted root.
    let last = &effective[effective.len() - 1];
    let root = roots
        .find_issuer(last.issuer())
        .ok_or(ChainError::UnknownRoot)?;
    if !root.validity().contains(now) {
        return Err(ChainError::Expired(effective.len()));
    }
    if !last.verify_signature(root.public_key()) {
        return Err(ChainError::BadSignature(effective.len() - 1));
    }

    // Host coverage for the leaf.
    if let Some(host) = host {
        if !effective[0].covers_host(host) {
            return Err(ChainError::HostMismatch);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::{CertificateAuthority, IssueParams};
    use rand::{rngs::StdRng, SeedableRng};

    fn now() -> Time {
        Time::from_civil(2018, 4, 25, 0, 0, 0)
    }

    struct Fixture {
        root: CertificateAuthority,
        inter: CertificateAuthority,
        leaf: Certificate,
        store: RootStore,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(42);
        let mut root =
            CertificateAuthority::new_root(&mut rng, "Trust Co", "Trust Root", "trust.test", now());
        let mut inter =
            root.issue_intermediate(&mut rng, "Trust Co", "Trust CA 1", "ca1.trust.test", now());
        let leaf = inter.issue(&mut rng, &IssueParams::new("site.example", now()));
        let mut store = RootStore::new("test");
        store.add(root.certificate().clone());
        Fixture {
            root,
            inter,
            leaf,
            store,
        }
    }

    #[test]
    fn valid_two_level_chain() {
        let f = fixture();
        let chain = vec![f.leaf.clone(), f.inter.certificate().clone()];
        validate_chain(&chain, &f.store, now(), Some("site.example")).unwrap();
    }

    #[test]
    fn chain_including_root_is_accepted() {
        let f = fixture();
        let chain = vec![
            f.leaf.clone(),
            f.inter.certificate().clone(),
            f.root.certificate().clone(),
        ];
        validate_chain(&chain, &f.store, now(), Some("site.example")).unwrap();
    }

    #[test]
    fn empty_chain_rejected() {
        let f = fixture();
        assert_eq!(
            validate_chain(&[], &f.store, now(), None),
            Err(ChainError::EmptyChain)
        );
    }

    #[test]
    fn untrusted_root_rejected() {
        let f = fixture();
        let empty_store = RootStore::new("empty");
        let chain = vec![f.leaf.clone(), f.inter.certificate().clone()];
        assert_eq!(
            validate_chain(&chain, &empty_store, now(), None),
            Err(ChainError::UnknownRoot)
        );
    }

    #[test]
    fn expired_leaf_rejected() {
        let f = fixture();
        let chain = vec![f.leaf.clone(), f.inter.certificate().clone()];
        let after_expiry = now() + 200 * 86_400;
        assert_eq!(
            validate_chain(&chain, &f.store, after_expiry, None),
            Err(ChainError::Expired(0))
        );
    }

    #[test]
    fn not_yet_valid_rejected() {
        let f = fixture();
        let chain = vec![f.leaf.clone(), f.inter.certificate().clone()];
        let before = now() - 30 * 86_400;
        assert!(matches!(
            validate_chain(&chain, &f.store, before, None),
            Err(ChainError::Expired(_))
        ));
    }

    #[test]
    fn host_mismatch_rejected() {
        let f = fixture();
        let chain = vec![f.leaf.clone(), f.inter.certificate().clone()];
        assert_eq!(
            validate_chain(&chain, &f.store, now(), Some("other.example")),
            Err(ChainError::HostMismatch)
        );
    }

    #[test]
    fn wrong_intermediate_rejected() {
        let mut rng = StdRng::seed_from_u64(77);
        let f = fixture();
        // An unrelated intermediate whose subject matches nothing.
        let mut other_root =
            CertificateAuthority::new_root(&mut rng, "Other", "Other Root", "other.test", now());
        let other_inter =
            other_root.issue_intermediate(&mut rng, "Other", "Other CA", "ca.other.test", now());
        let chain = vec![f.leaf.clone(), other_inter.certificate().clone()];
        assert_eq!(
            validate_chain(&chain, &f.store, now(), None),
            Err(ChainError::IssuerMismatch(0))
        );
    }

    #[test]
    fn leaf_in_issuing_position_rejected() {
        let f = fixture();
        // Chain the leaf to itself: a non-CA in issuing position must be
        // rejected (issuer mismatch fires first here; any error is
        // acceptable evidence of rejection).
        let chain = vec![f.leaf.clone(), f.leaf.clone()];
        assert!(validate_chain(&chain, &f.store, now(), None).is_err());
    }

    #[test]
    fn tampered_leaf_signature_rejected() {
        let f = fixture();
        // Re-assemble the leaf with a corrupted signature.
        let mut sig = f.leaf.signature().to_vec();
        sig[0] ^= 0xff;
        let tampered = Certificate::assemble(f.leaf.tbs().clone(), sig);
        let chain = vec![tampered, f.inter.certificate().clone()];
        assert_eq!(
            validate_chain(&chain, &f.store, now(), None),
            Err(ChainError::BadSignature(0))
        );
    }

    #[test]
    fn direct_root_issued_leaf() {
        let mut rng = StdRng::seed_from_u64(79);
        let mut root =
            CertificateAuthority::new_root(&mut rng, "Direct", "Direct Root", "direct.test", now());
        let leaf = root.issue(&mut rng, &IssueParams::new("direct.example", now()));
        let mut store = RootStore::new("s");
        store.add(root.certificate().clone());
        validate_chain(&[leaf], &store, now(), Some("direct.example")).unwrap();
    }
}
