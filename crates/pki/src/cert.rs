//! X.509 v3 certificates with real DER encoding and toy-RSA signatures.

use crate::extensions::{
    AuthorityInfoAccess, BasicConstraints, CrlDistributionPoints, ExtendedKeyUsage, Extension,
    SubjectAltName, TlsFeature,
};
use crate::name::Name;
use crate::serial::Serial;
use asn1::{Decoder, Encoder, Error, Oid, Result, Time};
use simcrypto::{BigUint, PublicKey};

/// A certificate validity window (inclusive on both ends, as RFC 5280).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validity {
    /// First instant the certificate is valid.
    pub not_before: Time,
    /// Last instant the certificate is valid.
    pub not_after: Time,
}

impl Validity {
    /// Whether `t` falls within the window.
    pub fn contains(&self, t: Time) -> bool {
        self.not_before <= t && t <= self.not_after
    }

    /// Seconds remaining after `t` (zero if expired).
    pub fn remaining(&self, t: Time) -> i64 {
        (self.not_after - t).max(0)
    }
}

/// The to-be-signed portion of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsCertificate {
    /// Serial number, unique per issuer.
    pub serial: Serial,
    /// Issuer distinguished name.
    pub issuer: Name,
    /// Validity window.
    pub validity: Validity,
    /// Subject distinguished name.
    pub subject: Name,
    /// Subject public key.
    pub public_key: PublicKey,
    /// v3 extensions, in order.
    pub extensions: Vec<Extension>,
}

impl TbsCertificate {
    /// Encode to DER (the exact bytes that get signed).
    pub fn to_der(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            // version [0] EXPLICIT INTEGER { v3(2) }
            enc.explicit(0, |enc| enc.integer_i64(2));
            self.serial.encode(enc);
            encode_algorithm_id(enc);
            self.issuer.encode(enc);
            enc.sequence(|enc| {
                enc.x509_time(self.validity.not_before);
                enc.x509_time(self.validity.not_after);
            });
            self.subject.encode(enc);
            encode_spki(enc, &self.public_key);
            if !self.extensions.is_empty() {
                enc.explicit(3, |enc| {
                    enc.sequence(|enc| {
                        for ext in &self.extensions {
                            ext.encode(enc);
                        }
                    });
                });
            }
        });
        enc.finish()
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<TbsCertificate> {
        let mut tbs = dec.sequence()?;
        let mut version = tbs.explicit(0)?;
        let v = version.integer_i64()?;
        if v != 2 {
            return Err(Error::ValueOutOfRange);
        }
        let serial = Serial::decode(&mut tbs)?;
        decode_algorithm_id(&mut tbs)?;
        let issuer = Name::decode(&mut tbs)?;
        let mut validity_seq = tbs.sequence()?;
        let validity = Validity {
            not_before: validity_seq.x509_time()?,
            not_after: validity_seq.x509_time()?,
        };
        validity_seq.finish()?;
        let subject = Name::decode(&mut tbs)?;
        let public_key = decode_spki(&mut tbs)?;
        let mut extensions = Vec::new();
        if let Some(mut wrapper) = tbs.optional_explicit(3)? {
            let mut list = wrapper.sequence()?;
            while !list.is_empty() {
                extensions.push(Extension::decode(&mut list)?);
            }
            wrapper.finish()?;
        }
        tbs.finish()?;
        Ok(TbsCertificate {
            serial,
            issuer,
            validity,
            subject,
            public_key,
            extensions,
        })
    }
}

/// A signed certificate.
///
/// Holds the exact DER bytes of its TBS portion so signature verification
/// operates on what was actually signed, whether the certificate was
/// parsed off the wire or issued locally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    tbs: TbsCertificate,
    tbs_der: Vec<u8>,
    signature: Vec<u8>,
}

impl Certificate {
    /// Assemble a certificate from a TBS and its signature. Used by the
    /// CA engine; `signature` must cover `tbs.to_der()`.
    pub fn assemble(tbs: TbsCertificate, signature: Vec<u8>) -> Certificate {
        let tbs_der = tbs.to_der();
        Certificate {
            tbs,
            tbs_der,
            signature,
        }
    }

    /// The to-be-signed content.
    pub fn tbs(&self) -> &TbsCertificate {
        &self.tbs
    }

    /// The exact signed bytes.
    pub fn tbs_der(&self) -> &[u8] {
        &self.tbs_der
    }

    /// The signature bytes.
    pub fn signature(&self) -> &[u8] {
        &self.signature
    }

    /// Encode the full certificate to DER.
    pub fn to_der(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            enc.raw(&self.tbs_der);
            encode_algorithm_id(enc);
            enc.bit_string(&self.signature);
        });
        enc.finish()
    }

    /// Decode a certificate from DER.
    pub fn from_der(der: &[u8]) -> Result<Certificate> {
        let mut dec = Decoder::new(der);
        let mut seq = dec.sequence()?;
        // Capture the raw TBS bytes, then parse them.
        let tbs_der = seq.raw_tlv()?.to_vec();
        let mut tbs_dec = Decoder::new(&tbs_der);
        let tbs = TbsCertificate::decode(&mut tbs_dec)?;
        tbs_dec.finish()?;
        decode_algorithm_id(&mut seq)?;
        let signature = seq.bit_string()?.to_vec();
        seq.finish()?;
        dec.finish()?;
        Ok(Certificate {
            tbs,
            tbs_der,
            signature,
        })
    }

    /// Verify this certificate's signature against an issuer public key.
    pub fn verify_signature(&self, issuer_key: &PublicKey) -> bool {
        issuer_key.verify(&self.tbs_der, &self.signature).is_ok()
    }

    /// SHA-256 fingerprint of the full DER encoding.
    pub fn fingerprint(&self) -> [u8; 32] {
        simcrypto::sha256(&self.to_der())
    }

    // --- Field & extension conveniences ------------------------------------

    /// Serial number.
    pub fn serial(&self) -> &Serial {
        &self.tbs.serial
    }

    /// Subject name.
    pub fn subject(&self) -> &Name {
        &self.tbs.subject
    }

    /// Issuer name.
    pub fn issuer(&self) -> &Name {
        &self.tbs.issuer
    }

    /// Validity window.
    pub fn validity(&self) -> Validity {
        self.tbs.validity
    }

    /// Subject public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.tbs.public_key
    }

    /// Find a raw extension by OID.
    pub fn extension(&self, oid: &Oid) -> Option<&Extension> {
        self.tbs.extensions.iter().find(|e| e.oid == *oid)
    }

    /// Whether the certificate carries the OCSP Must-Staple feature —
    /// a TLS Feature extension containing `status_request` (RFC 7633).
    pub fn has_must_staple(&self) -> bool {
        self.extension(&Oid::TLS_FEATURE)
            .and_then(|e| TlsFeature::from_extension(e).ok())
            .is_some_and(|f| f.requires_staple())
    }

    /// OCSP responder URLs from the AIA extension. Non-empty means the
    /// certificate "supports OCSP" in the paper's terminology.
    pub fn ocsp_urls(&self) -> Vec<String> {
        self.extension(&Oid::AUTHORITY_INFO_ACCESS)
            .and_then(|e| AuthorityInfoAccess::from_extension(e).ok())
            .map(|aia| aia.ocsp)
            .unwrap_or_default()
    }

    /// CRL URLs from the CRL Distribution Points extension.
    pub fn crl_urls(&self) -> Vec<String> {
        self.extension(&Oid::CRL_DISTRIBUTION_POINTS)
            .and_then(|e| CrlDistributionPoints::from_extension(e).ok())
            .map(|dp| dp.urls)
            .unwrap_or_default()
    }

    /// DNS names from the SAN extension.
    pub fn dns_names(&self) -> Vec<String> {
        self.extension(&Oid::SUBJECT_ALT_NAME)
            .and_then(|e| SubjectAltName::from_extension(e).ok())
            .map(|san| san.dns_names)
            .unwrap_or_default()
    }

    /// Whether `host` is covered by the SAN (or, absent a SAN, the CN).
    pub fn covers_host(&self, host: &str) -> bool {
        if let Some(ext) = self.extension(&Oid::SUBJECT_ALT_NAME) {
            if let Ok(san) = SubjectAltName::from_extension(ext) {
                return san.covers(host);
            }
        }
        self.tbs
            .subject
            .cn()
            .is_some_and(|cn| cn.eq_ignore_ascii_case(host))
    }

    /// Whether Basic Constraints marks this as a CA certificate.
    pub fn is_ca(&self) -> bool {
        self.extension(&Oid::BASIC_CONSTRAINTS)
            .and_then(|e| BasicConstraints::from_extension(e).ok())
            .is_some_and(|bc| bc.ca)
    }

    /// The Basic Constraints path length limit, if any.
    pub fn path_len(&self) -> Option<u32> {
        self.extension(&Oid::BASIC_CONSTRAINTS)
            .and_then(|e| BasicConstraints::from_extension(e).ok())
            .and_then(|bc| bc.path_len)
    }

    /// Whether the certificate is delegated authority to sign OCSP
    /// responses for its issuer (RFC 6960 §4.2.2.2).
    pub fn allows_ocsp_signing(&self) -> bool {
        self.extension(&Oid::EXT_KEY_USAGE)
            .and_then(|e| ExtendedKeyUsage::from_extension(e).ok())
            .is_some_and(|eku| eku.allows_ocsp_signing())
    }

    /// Whether this is a self-signed (root-style) certificate: subject and
    /// issuer match and the signature verifies under its own key.
    pub fn is_self_signed(&self) -> bool {
        self.tbs.subject == self.tbs.issuer && self.verify_signature(&self.tbs.public_key)
    }
}

/// Encode `AlgorithmIdentifier ::= SEQUENCE { simRSA-SHA256, NULL }`.
fn encode_algorithm_id(enc: &mut Encoder) {
    enc.sequence(|enc| {
        enc.oid(&Oid::SIM_RSA_SHA256);
        enc.null();
    });
}

/// Decode and check the AlgorithmIdentifier.
fn decode_algorithm_id(dec: &mut Decoder<'_>) -> Result<()> {
    let mut seq = dec.sequence()?;
    let oid = seq.oid()?;
    if oid != Oid::SIM_RSA_SHA256 {
        return Err(Error::ValueOutOfRange);
    }
    seq.null()?;
    seq.finish()
}

/// Encode `SubjectPublicKeyInfo ::= SEQUENCE { AlgorithmIdentifier,
/// BIT STRING { SEQUENCE { n INTEGER, e INTEGER } } }`.
fn encode_spki(enc: &mut Encoder, key: &PublicKey) {
    enc.sequence(|enc| {
        encode_algorithm_id(enc);
        let mut inner = Encoder::new();
        inner.sequence(|enc| {
            enc.integer_unsigned(&key.modulus().to_be_bytes());
            enc.integer_unsigned(&key.exponent().to_be_bytes());
        });
        enc.bit_string(&inner.finish());
    });
}

/// Decode a SubjectPublicKeyInfo.
fn decode_spki(dec: &mut Decoder<'_>) -> Result<PublicKey> {
    let mut seq = dec.sequence()?;
    decode_algorithm_id(&mut seq)?;
    let key_bits = seq.bit_string()?;
    seq.finish()?;
    let mut key_dec = Decoder::new(key_bits);
    let mut key_seq = key_dec.sequence()?;
    let n = BigUint::from_be_bytes(key_seq.integer_unsigned()?);
    let e = BigUint::from_be_bytes(key_seq.integer_unsigned()?);
    key_seq.finish()?;
    key_dec.finish()?;
    Ok(PublicKey::new(n, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use simcrypto::KeyPair;

    fn test_keypair(seed: u64) -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(seed), 384)
    }

    fn sample_tbs(kp: &KeyPair, extensions: Vec<Extension>) -> TbsCertificate {
        TbsCertificate {
            serial: Serial::from_u64(0x0102030405),
            issuer: Name::ca("Example CA", "Example Root R1"),
            validity: Validity {
                not_before: Time::from_civil(2018, 1, 1, 0, 0, 0),
                not_after: Time::from_civil(2018, 12, 31, 23, 59, 59),
            },
            subject: Name::common_name("www.example.com"),
            public_key: kp.public().clone(),
            extensions,
        }
    }

    fn signed(tbs: TbsCertificate, signer: &KeyPair) -> Certificate {
        let sig = signer.sign(&tbs.to_der());
        Certificate::assemble(tbs, sig)
    }

    #[test]
    fn der_round_trip_and_verify() {
        let subject_kp = test_keypair(1);
        let ca_kp = test_keypair(2);
        let exts = vec![
            BasicConstraints {
                ca: false,
                path_len: None,
            }
            .to_extension(),
            TlsFeature::must_staple().to_extension(),
            AuthorityInfoAccess {
                ocsp: vec!["http://ocsp.example-ca.com".into()],
                ca_issuers: vec![],
            }
            .to_extension(),
        ];
        let cert = signed(sample_tbs(&subject_kp, exts), &ca_kp);
        let der = cert.to_der();
        let back = Certificate::from_der(&der).unwrap();
        assert_eq!(back, cert);
        assert!(back.verify_signature(ca_kp.public()));
        assert!(!back.verify_signature(subject_kp.public()));
        assert!(back.has_must_staple());
        assert_eq!(
            back.ocsp_urls(),
            vec!["http://ocsp.example-ca.com".to_string()]
        );
        assert!(!back.is_ca());
    }

    #[test]
    fn tampered_der_fails_signature() {
        let kp = test_keypair(3);
        let cert = signed(sample_tbs(&kp, vec![]), &kp);
        let mut der = cert.to_der();
        // Flip a byte inside the subject name region.
        let idx = der.len() / 2;
        der[idx] ^= 0x01;
        // A parse error is also acceptable: structural damage.
        if let Ok(parsed) = Certificate::from_der(&der) {
            assert!(!parsed.verify_signature(kp.public()));
        }
    }

    #[test]
    fn self_signed_detection() {
        let kp = test_keypair(4);
        let mut tbs = sample_tbs(
            &kp,
            vec![BasicConstraints {
                ca: true,
                path_len: None,
            }
            .to_extension()],
        );
        tbs.subject = tbs.issuer.clone();
        let root = signed(tbs, &kp);
        assert!(root.is_self_signed());
        assert!(root.is_ca());

        let leaf = signed(sample_tbs(&kp, vec![]), &kp);
        assert!(!leaf.is_self_signed()); // subject != issuer
    }

    #[test]
    fn host_coverage_prefers_san() {
        let kp = test_keypair(5);
        let exts = vec![SubjectAltName {
            dns_names: vec!["alt.example.net".into(), "*.wild.example.net".into()],
        }
        .to_extension()];
        let cert = signed(sample_tbs(&kp, exts), &kp);
        assert!(cert.covers_host("alt.example.net"));
        assert!(cert.covers_host("x.wild.example.net"));
        // CN is ignored when a SAN exists.
        assert!(!cert.covers_host("www.example.com"));

        let no_san = signed(sample_tbs(&kp, vec![]), &kp);
        assert!(no_san.covers_host("www.example.com"));
    }

    #[test]
    fn must_staple_absent_by_default() {
        let kp = test_keypair(6);
        let cert = signed(sample_tbs(&kp, vec![]), &kp);
        assert!(!cert.has_must_staple());
        assert!(cert.ocsp_urls().is_empty());
        assert!(cert.crl_urls().is_empty());
    }

    #[test]
    fn validity_window() {
        let v = Validity {
            not_before: Time::from_civil(2018, 1, 1, 0, 0, 0),
            not_after: Time::from_civil(2018, 2, 1, 0, 0, 0),
        };
        assert!(v.contains(Time::from_civil(2018, 1, 15, 0, 0, 0)));
        assert!(v.contains(v.not_before));
        assert!(v.contains(v.not_after));
        assert!(!v.contains(v.not_after + 1));
        assert!(!v.contains(v.not_before - 1));
        assert_eq!(v.remaining(v.not_after), 0);
        assert_eq!(v.remaining(v.not_after + 100), 0);
        assert_eq!(v.remaining(v.not_after - 60), 60);
    }

    #[test]
    fn ocsp_signing_delegation_flag() {
        let kp = test_keypair(7);
        let exts = vec![ExtendedKeyUsage::ocsp_signing().to_extension()];
        let cert = signed(sample_tbs(&kp, exts), &kp);
        assert!(cert.allows_ocsp_signing());
    }

    #[test]
    fn rejects_non_v3() {
        let kp = test_keypair(8);
        let cert = signed(sample_tbs(&kp, vec![]), &kp);
        let der = cert.to_der();
        // Patch version INTEGER 2 -> 1. The version TLV is at a fixed
        // offset: SEQ hdr, SEQ hdr, [0] hdr, INT(1 byte).
        let mut patched = der.clone();
        let pos = patched
            .windows(5)
            .position(|w| w == [0xa0, 0x03, 0x02, 0x01, 0x02])
            .unwrap();
        patched[pos + 4] = 0x01;
        assert!(Certificate::from_der(&patched).is_err());
    }
}
