//! X.509-style PKI for the Must-Staple study.
//!
//! This crate implements the certificate machinery the paper's measurement
//! pipeline exercises:
//!
//! * [`cert`] — certificates with real DER encoding, including every
//!   extension the study inspects: Authority Information Access (OCSP and
//!   caIssuers URLs), CRL Distribution Points, Basic Constraints, Key
//!   Usage, Extended Key Usage (OCSP signing delegation), Subject
//!   Alternative Name, and — centrally — the **TLS Feature extension**
//!   (OID `1.3.6.1.5.5.7.1.24`) whose `status_request` feature is OCSP
//!   Must-Staple;
//! * [`crl`] — certificate revocation lists with reason codes and
//!   validity windows (`thisUpdate`/`nextUpdate`), used in §5.4's
//!   CRL↔OCSP consistency study;
//! * [`ca`] — a certificate authority engine that issues roots,
//!   intermediates, leaves, and delegated OCSP-signer certificates, and
//!   maintains the revocation database that backs both its CRL and its
//!   OCSP responder (including the paper-observed failure mode of the two
//!   views drifting apart);
//! * [`chain`] — client-side chain validation with typed errors;
//! * [`store`] — trusted root stores (the study validates against the
//!   union of Apple/Microsoft/Mozilla-like stores).
//!
//! Signatures use the [`simcrypto`] toy-RSA scheme; they really verify
//! and really fail when tampered with, which the study's fault injection
//! depends on.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ca;
pub mod cert;
pub mod chain;
pub mod crl;
pub mod extensions;
pub mod name;
pub mod serial;
pub mod store;

pub use asn1::Time;
pub use ca::{CertificateAuthority, IssueParams};
pub use cert::{Certificate, TbsCertificate, Validity};
pub use chain::{validate_chain, ChainError};
pub use crl::{Crl, RevocationReason, RevokedEntry};
pub use extensions::{AuthorityInfoAccess, BasicConstraints, Extension, KeyUsage, TlsFeature};
pub use name::Name;
pub use serial::Serial;
pub use store::RootStore;
