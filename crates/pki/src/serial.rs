//! Certificate serial numbers.
//!
//! Serials are the join key of the entire revocation ecosystem: CRLs list
//! them, OCSP requests carry them, and §5.4's consistency study matches
//! them across the two. They are arbitrary-precision non-negative
//! integers; real CAs issue up to 20 octets.

use asn1::{Decoder, Encoder, Result};
use core::fmt;
use rand::Rng;

/// A certificate serial number: a non-negative integer of up to 20 octets,
/// stored as minimal big-endian magnitude bytes.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Serial {
    bytes: Vec<u8>,
}

impl Serial {
    /// From a `u64`.
    pub fn from_u64(v: u64) -> Serial {
        let bytes = v.to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count().min(7);
        Serial {
            bytes: bytes[skip..].to_vec(),
        }
    }

    /// From magnitude bytes (leading zeros trimmed).
    pub fn from_bytes(bytes: &[u8]) -> Serial {
        let mut b = bytes;
        while b.len() > 1 && b[0] == 0 {
            b = &b[1..];
        }
        if b.is_empty() {
            return Serial { bytes: vec![0] };
        }
        Serial { bytes: b.to_vec() }
    }

    /// A random 16-octet serial, as modern CAs issue (CAB Forum requires
    /// ≥64 bits of CSPRNG output; most use 128).
    pub fn random(rng: &mut impl Rng) -> Serial {
        let mut bytes = [0u8; 16];
        rng.fill(&mut bytes);
        bytes[0] &= 0x7f; // keep it comfortably positive
        Serial::from_bytes(&bytes)
    }

    /// The magnitude bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Encode as a DER INTEGER.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.integer_unsigned(&self.bytes);
    }

    /// Decode from a DER INTEGER.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Serial> {
        Ok(Serial::from_bytes(dec.integer_unsigned()?))
    }
}

impl fmt::Display for Serial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bytes {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Serial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Serial({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn from_u64_trims() {
        assert_eq!(Serial::from_u64(0).bytes(), &[0]);
        assert_eq!(Serial::from_u64(0xabcd).bytes(), &[0xab, 0xcd]);
    }

    #[test]
    fn from_bytes_normalizes() {
        assert_eq!(Serial::from_bytes(&[0, 0, 1]).bytes(), &[1]);
        assert_eq!(Serial::from_bytes(&[]).bytes(), &[0]);
        assert_eq!(Serial::from_bytes(&[0, 0]), Serial::from_u64(0));
    }

    #[test]
    fn der_round_trip() {
        for serial in [
            Serial::from_u64(0),
            Serial::from_u64(1 << 40),
            Serial::from_bytes(&[0x9a; 16]),
        ] {
            let mut enc = Encoder::new();
            serial.encode(&mut enc);
            let der = enc.finish();
            let mut dec = Decoder::new(&der);
            assert_eq!(Serial::decode(&mut dec).unwrap(), serial);
        }
    }

    #[test]
    fn random_serials_are_distinct_and_16_bytes() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Serial::random(&mut rng);
        let b = Serial::random(&mut rng);
        assert_ne!(a, b);
        assert_eq!(a.bytes().len(), 16);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Serial::from_u64(0xdead).to_string(), "dead");
    }
}
