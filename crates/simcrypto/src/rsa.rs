//! Toy-size textbook RSA signatures with PKCS#1 v1.5-shaped padding.
//!
//! Signing encodes `EM = 0x00 || 0x01 || 0xFF.. || 0x00 || SHA256(msg)`
//! and computes `EM^d mod n`; verification recomputes `sig^e mod n` and
//! compares the full encoded message. The padding check is strict
//! (full re-encode comparison), so truncation/garbage attacks used by the
//! study's fault injector are reliably detected.
//!
//! The default modulus size is 384 bits: large enough that the byte-level
//! encodings look realistic, small enough that a measurement campaign can
//! sign millions of responses in seconds.

use crate::bigint::BigUint;
use crate::prime::generate_prime;
use crate::sha256;
use rand::Rng;

/// Default modulus size in bits for simulation keys — the smallest size
/// that fits PKCS#1-style SHA-256 padding. Signing cost scales roughly
/// cubically with modulus size, and the scan campaigns sign millions of
/// responses, so the default stays at the floor.
pub const DEFAULT_BITS: usize = 384;

/// The fixed public exponent, 65537.
pub fn public_exponent() -> BigUint {
    BigUint::from_u64(65537)
}

/// Verification failure reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// The signature integer was not smaller than the modulus, or had the
    /// wrong byte length.
    Malformed,
    /// The recovered encoded message did not match the expected padding
    /// and digest.
    Invalid,
}

impl core::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SignatureError::Malformed => write!(f, "malformed signature"),
            SignatureError::Invalid => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for SignatureError {}

/// An RSA public key (n, e).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PublicKey {
    n: BigUint,
    e: BigUint,
}

impl PublicKey {
    /// Construct from raw components.
    pub fn new(n: BigUint, e: BigUint) -> PublicKey {
        PublicKey { n, e }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus size in whole bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Verify `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), SignatureError> {
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(SignatureError::Malformed);
        }
        let s = BigUint::from_be_bytes(signature);
        if s.cmp_to(&self.n) != core::cmp::Ordering::Less {
            return Err(SignatureError::Malformed);
        }
        let em = s.modpow(&self.e, &self.n).to_be_bytes_padded(k);
        let expected = encode_em(message, k).ok_or(SignatureError::Malformed)?;
        if em == expected {
            Ok(())
        } else {
            Err(SignatureError::Invalid)
        }
    }

    /// A stable identifier for this key: SHA-256 of `n || e` bytes.
    /// Used as the `issuerKeyHash` in OCSP CertIDs.
    pub fn key_id(&self) -> [u8; 32] {
        let mut data = self.n.to_be_bytes();
        data.extend_from_slice(&self.e.to_be_bytes());
        sha256(&data)
    }
}

/// An RSA key pair, with CRT parameters for fast signing.
#[derive(Debug, Clone)]
pub struct KeyPair {
    public: PublicKey,
    d: BigUint,
    /// CRT: the prime factors and reduced exponents. Signing via the
    /// Chinese Remainder Theorem is ~4x faster than a full modpow, which
    /// matters because the simulated responders sign hundreds of
    /// thousands of OCSP responses per measurement campaign.
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
}

impl KeyPair {
    /// Generate a key pair with a modulus of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 384`: the encoded message needs 32 (digest) + 3
    /// (header) + 8 (minimum pad) = 43 bytes, i.e. 344 bits, and we round
    /// up to the next common size.
    pub fn generate(rng: &mut impl Rng, bits: usize) -> KeyPair {
        assert!(bits >= 384, "modulus too small for SHA-256 padding");
        let e = public_exponent();
        loop {
            let p = generate_prime(rng, bits / 2);
            let q = generate_prime(rng, bits - bits / 2);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            let Some(d) = e.modinv(&phi) else { continue };
            let Some(qinv) = q.modinv(&p) else { continue };
            let dp = d.rem(&p.sub(&one));
            let dq = d.rem(&q.sub(&one));
            return KeyPair {
                public: PublicKey { n, e },
                d,
                p,
                q,
                dp,
                dq,
                qinv,
            };
        }
    }

    /// Generate with the default simulation size.
    pub fn generate_default(rng: &mut impl Rng) -> KeyPair {
        Self::generate(rng, DEFAULT_BITS)
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Sign `message`, returning a signature of exactly `modulus_len`
    /// bytes. Uses CRT: `s1 = m^dp mod p`, `s2 = m^dq mod q`,
    /// `h = qinv (s1 - s2) mod p`, `s = s2 + q h`.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let k = self.public.modulus_len();
        let em = encode_em(message, k).expect("modulus checked at generation");
        let m = BigUint::from_be_bytes(&em);
        let s1 = m.modpow(&self.dp, &self.p);
        let s2 = m.modpow(&self.dq, &self.q);
        // (s1 - s2) mod p, lifting s2 into Z_p first to avoid underflow.
        let s2_mod_p = s2.rem(&self.p);
        let diff = if s1.cmp_to(&s2_mod_p) != core::cmp::Ordering::Less {
            s1.sub(&s2_mod_p)
        } else {
            s1.add(&self.p).sub(&s2_mod_p)
        };
        let h = self.qinv.mulmod(&diff, &self.p);
        let s = s2.add(&self.q.mul(&h));
        s.to_be_bytes_padded(k)
    }

    /// The full private exponent (exposed for tests/ablations comparing
    /// CRT signing against the straight `m^d mod n` path).
    pub fn sign_without_crt(&self, message: &[u8]) -> Vec<u8> {
        let k = self.public.modulus_len();
        let em = encode_em(message, k).expect("modulus checked at generation");
        let m = BigUint::from_be_bytes(&em);
        m.modpow(&self.d, &self.public.n).to_be_bytes_padded(k)
    }
}

/// PKCS#1 v1.5-shaped encoded message for a SHA-256 digest.
/// Returns `None` when `k` is too small to hold the padding.
fn encode_em(message: &[u8], k: usize) -> Option<Vec<u8>> {
    let digest = sha256(message);
    // 0x00 0x01 PS 0x00 DIGEST, with PS at least 8 bytes of 0xFF.
    let ps_len = k.checked_sub(3 + digest.len())?;
    if ps_len < 8 {
        return None;
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.extend(core::iter::repeat_n(0xff, ps_len));
    em.push(0x00);
    em.extend_from_slice(&digest);
    Some(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn keypair() -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(42), 384)
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = keypair();
        let sig = kp.sign(b"ocsp response body");
        kp.public().verify(b"ocsp response body", &sig).unwrap();
    }

    #[test]
    fn tampered_message_fails() {
        let kp = keypair();
        let sig = kp.sign(b"original");
        assert_eq!(
            kp.public().verify(b"tampered", &sig),
            Err(SignatureError::Invalid)
        );
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = keypair();
        let mut sig = kp.sign(b"message");
        sig[5] ^= 0x40;
        assert!(kp.public().verify(b"message", &sig).is_err());
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = keypair();
        let kp2 = KeyPair::generate(&mut StdRng::seed_from_u64(43), 384);
        let sig = kp1.sign(b"message");
        assert!(kp2.public().verify(b"message", &sig).is_err());
    }

    #[test]
    fn wrong_length_signature_is_malformed() {
        let kp = keypair();
        let sig = kp.sign(b"m");
        assert_eq!(
            kp.public().verify(b"m", &sig[1..]),
            Err(SignatureError::Malformed)
        );
        let mut long = sig.clone();
        long.push(0);
        assert_eq!(
            kp.public().verify(b"m", &long),
            Err(SignatureError::Malformed)
        );
    }

    #[test]
    fn signature_has_modulus_length() {
        let kp = keypair();
        for msg in [&b""[..], b"x", b"a much longer message spanning blocks"] {
            assert_eq!(kp.sign(msg).len(), kp.public().modulus_len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = KeyPair::generate(&mut StdRng::seed_from_u64(9), 384);
        let b = KeyPair::generate(&mut StdRng::seed_from_u64(9), 384);
        assert_eq!(a.public(), b.public());
    }

    #[test]
    fn key_ids_differ() {
        let a = keypair();
        let b = KeyPair::generate(&mut StdRng::seed_from_u64(77), 384);
        assert_ne!(a.public().key_id(), b.public().key_id());
    }

    #[test]
    fn crt_matches_plain_signing() {
        let kp = keypair();
        for msg in [&b"a"[..], b"bb", b"a longer message for crt equivalence"] {
            assert_eq!(kp.sign(msg), kp.sign_without_crt(msg));
        }
    }

    #[test]
    fn default_bits_keypair_works() {
        let kp = KeyPair::generate_default(&mut StdRng::seed_from_u64(1));
        assert_eq!(kp.public().modulus_len(), DEFAULT_BITS / 8);
        let sig = kp.sign(b"default");
        kp.public().verify(b"default", &sig).unwrap();
    }
}
