//! Probabilistic primality testing and prime generation.
//!
//! Miller–Rabin with random bases (plus a small-prime sieve for speed).
//! Prime generation draws candidates from a caller-supplied [`rand::Rng`]
//! so the whole PKI can be generated deterministically from one seed.

use crate::bigint::BigUint;
use rand::Rng;

/// Small primes used to quickly reject obvious composites.
const SMALL_PRIMES: [u32; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199,
];

/// Miller–Rabin rounds. For *random* candidates (our only use) the
/// composite-escape probability after 8 rounds is far below 4^-8;
/// the small-prime sieve removes the easy composites first.
const MR_ROUNDS: usize = 8;

/// Test whether `n` is (very probably) prime.
pub fn is_probable_prime(n: &BigUint, rng: &mut impl Rng) -> bool {
    if n.is_zero() {
        return false;
    }
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    if n == &one {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p_big = BigUint::from_u64(u64::from(p));
        if n == &p_big {
            return true;
        }
        if n.rem(&p_big).is_zero() {
            return false;
        }
    }
    if !n.is_odd() {
        return false;
    }

    // Write n-1 = d * 2^r with d odd.
    let n_minus_1 = n.sub(&one);
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while !d.is_odd() {
        d = d.shr(1);
        r += 1;
    }

    'witness: for _ in 0..MR_ROUNDS {
        // Random base in [2, n-2].
        let a = random_below(rng, &n_minus_1.sub(&two)).add(&two);
        let mut x = a.modpow(&d, n);
        if x == one || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..r.saturating_sub(1) {
            x = x.mulmod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Uniform random value in `[0, bound)`; `bound` must be nonzero.
pub fn random_below(rng: &mut impl Rng, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "random_below bound must be nonzero");
    let bytes = bound.bit_len().div_ceil(8);
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill(&mut buf[..]);
        // Mask the top byte down to the bound's bit length to keep the
        // rejection rate below 50%.
        let top_bits = bound.bit_len() % 8;
        if top_bits > 0 {
            buf[0] &= (1u16 << top_bits).wrapping_sub(1) as u8;
        }
        let candidate = BigUint::from_be_bytes(&buf);
        if candidate.cmp_to(bound) == core::cmp::Ordering::Less {
            return candidate;
        }
    }
}

/// Generate a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 8`.
pub fn generate_prime(rng: &mut impl Rng, bits: usize) -> BigUint {
    assert!(bits >= 8, "prime size must be at least 8 bits");
    loop {
        let bytes = bits.div_ceil(8);
        let mut buf = vec![0u8; bytes];
        rng.fill(&mut buf[..]);
        let mut candidate = BigUint::from_be_bytes(&buf);
        // Force exact bit length and oddness.
        candidate = candidate
            .rem(&BigUint::one().shl(bits - 1))
            .add(&BigUint::one().shl(bits - 1));
        if !candidate.is_odd() {
            candidate = candidate.add(&BigUint::one());
        }
        // March up in steps of 2 for a while before redrawing; cheaper
        // than fresh candidates because the sieve rejects most.
        for _ in 0..64 {
            if candidate.bit_len() != bits {
                break;
            }
            if is_probable_prime(&candidate, rng) {
                return candidate;
            }
            candidate = candidate.add(&BigUint::from_u64(2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn small_primes_and_composites() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 199, 211, 65537, 1_000_000_007] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), &mut r),
                "{p} should be prime"
            );
        }
        for c in [0u64, 1, 4, 9, 15, 201, 65536, 1_000_000_008, 561, 41041] {
            // 561 and 41041 are Carmichael numbers — MR must catch them.
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^89 - 1 is a Mersenne prime.
        let m89 = BigUint::one().shl(89).sub(&BigUint::one());
        assert!(is_probable_prime(&m89, &mut rng()));
        // 2^83 - 1 is composite.
        let m83 = BigUint::one().shl(83).sub(&BigUint::one());
        assert!(!is_probable_prime(&m83, &mut rng()));
    }

    #[test]
    fn generated_primes_have_exact_size() {
        let mut r = rng();
        for bits in [16usize, 64, 128] {
            let p = generate_prime(&mut r, bits);
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd());
            assert!(is_probable_prime(&p, &mut r));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_prime(&mut StdRng::seed_from_u64(7), 64);
        let b = generate_prime(&mut StdRng::seed_from_u64(7), 64);
        let c = generate_prime(&mut StdRng::seed_from_u64(8), 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_below_is_in_range() {
        let mut r = rng();
        let bound = BigUint::from_u64(1000);
        for _ in 0..200 {
            let v = random_below(&mut r, &bound);
            assert!(v.cmp_to(&bound) == core::cmp::Ordering::Less);
        }
    }
}
