//! Simulation-grade cryptography for the Must-Staple study.
//!
//! The study needs signatures on certificates, CRLs, and OCSP responses to
//! be *real enough to fail*: one of the measured OCSP error classes is
//! "incorrect signature", so tampered responses must actually flunk
//! verification, and delegated OCSP signing (RFC 6960 §4.2.2.2) must
//! actually chain. At the same time, nothing here protects real secrets,
//! so key sizes are deliberately toy (256–768 bits) and generation favors
//! determinism over entropy.
//!
//! What is real:
//!
//! * [`mod@sha256`] — a complete FIPS 180-4 SHA-256, tested against NIST
//!   vectors. Used for CertID hashes, signature digests, and key IDs.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), used for deterministic
//!   per-entity randomness derivation.
//! * [`bigint`] — arbitrary-precision unsigned arithmetic (add, sub, mul,
//!   div/rem, modpow, modular inverse).
//! * [`prime`] — Miller–Rabin probabilistic primality and random prime
//!   generation.
//! * [`rsa`] — textbook RSA keygen/sign/verify with PKCS#1 v1.5-shaped
//!   padding over a SHA-256 DigestInfo.
//!
//! What is *not* real: key sizes, padding side-channel hygiene, and any
//! claim of confidentiality. The algorithm identifier used throughout the
//! PKI is the private-arc OID `1.3.6.1.4.1.99999.1.1` ("simRSA-SHA256")
//! precisely so these keys can never be confused with production RSA.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bigint;
pub mod hmac;
pub mod prime;
pub mod rsa;
pub mod sha256;

pub use bigint::BigUint;
pub use rsa::{KeyPair, PublicKey, SignatureError};
pub use sha256::Sha256;

/// Convenience: SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Convenience: HMAC-SHA256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    hmac::hmac_sha256(key, data)
}
