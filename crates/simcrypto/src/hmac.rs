//! HMAC-SHA256 (RFC 2104).
//!
//! Besides message authentication, the study uses HMAC as a deterministic
//! PRF: per-entity key material and per-event randomness are derived as
//! `HMAC(seed, label)`, which keeps every simulation run reproducible.

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Compute HMAC-SHA256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let mut h = Sha256::new();
        h.update(key);
        k[..32].copy_from_slice(&h.finalize());
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// A deterministic byte stream derived from a seed via HMAC in counter
/// mode: block *i* is `HMAC(seed, label || i_be)`. Used wherever the
/// simulation needs "randomness" attributable to a stable identity.
pub struct Prf {
    seed: Vec<u8>,
    label: Vec<u8>,
    counter: u64,
    buffer: [u8; 32],
    used: usize,
}

impl Prf {
    /// Create a PRF stream for (`seed`, `label`).
    pub fn new(seed: &[u8], label: &[u8]) -> Prf {
        Prf {
            seed: seed.to_vec(),
            label: label.to_vec(),
            counter: 0,
            buffer: [0; 32],
            used: 32,
        }
    }

    /// Fill `out` with the next bytes of the stream.
    pub fn fill(&mut self, out: &mut [u8]) {
        for byte in out {
            if self.used == 32 {
                let mut msg = self.label.clone();
                msg.extend_from_slice(&self.counter.to_be_bytes());
                self.buffer = hmac_sha256(&self.seed, &msg);
                self.counter += 1;
                self.used = 0;
            }
            *byte = self.buffer[self.used];
            self.used += 1;
        }
    }

    /// Next 8 bytes of the stream as a `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_be_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn prf_is_deterministic_and_label_separated() {
        let mut a = Prf::new(b"seed", b"label-1");
        let mut b = Prf::new(b"seed", b"label-1");
        let mut c = Prf::new(b"seed", b"label-2");
        let (mut x, mut y, mut z) = ([0u8; 100], [0u8; 100], [0u8; 100]);
        a.fill(&mut x);
        b.fill(&mut y);
        c.fill(&mut z);
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn prf_chunking_is_stream_stable() {
        let mut a = Prf::new(b"s", b"l");
        let mut one = [0u8; 96];
        a.fill(&mut one);
        let mut b = Prf::new(b"s", b"l");
        let mut parts = [0u8; 96];
        for chunk in parts.chunks_mut(7) {
            b.fill(chunk);
        }
        assert_eq!(one, parts);
    }
}
