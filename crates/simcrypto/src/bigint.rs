//! Arbitrary-precision unsigned integers.
//!
//! A compact school-book implementation sized for the toy RSA keys the
//! study uses (≤ 1024 bits). Limbs are `u32` so multiplication can use
//! `u64` intermediates without overflow gymnastics. Nothing here is
//! constant-time — these keys protect nothing.

use core::cmp::Ordering;
use core::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` has no trailing zero limbs (so zero is the empty
/// vector), least-significant limb first.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> BigUint {
        BigUint { limbs: vec![1] }
    }

    /// From a `u64`.
    pub fn from_u64(v: u64) -> BigUint {
        let mut n = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// From big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> BigUint {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut acc: u32 = 0;
        let mut shift = 0;
        for &b in bytes.iter().rev() {
            acc |= u32::from(b) << shift;
            shift += 8;
            if shift == 32 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// To big-endian bytes (minimal length; zero encodes as empty).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// To big-endian bytes left-padded with zeros to exactly `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_be_bytes();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|&l| l & 1 == 1)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Test bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let off = i % 32;
        self.limbs.get(limb).is_some_and(|&l| l >> off & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry: u64 = 0;
        for (i, &limb) in longer.iter().enumerate() {
            let sum = u64::from(limb) + u64::from(shorter.get(i).copied().unwrap_or(0)) + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (unsigned arithmetic).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_to(other) != Ordering::Less,
            "unsigned subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let mut diff = i64::from(self.limbs[i])
                - i64::from(other.limbs.get(i).copied().unwrap_or(0))
                - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self * other`.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = u64::from(a) * u64::from(b) + u64::from(out[i + j]) + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = u64::from(out[k]) + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Shift left by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in &self.limbs {
                out.push(l << bit_shift | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Shift right by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).copied().unwrap_or(0) << (32 - bit_shift);
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Compare (avoiding the `Ord` trait name clash in call sites).
    pub fn cmp_to(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `(self / divisor, self % divisor)` by binary long division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp_to(divisor) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            // Fast path: single-limb divisor.
            let d = u64::from(divisor.limbs[0]);
            let mut rem: u64 = 0;
            let mut q = vec![0u32; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = rem << 32 | u64::from(self.limbs[i]);
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut quot = BigUint { limbs: q };
            quot.normalize();
            return (quot, BigUint::from_u64(rem));
        }
        // General case: Knuth TAOCP vol. 2 Algorithm D (word-based long
        // division). Normalize so the divisor's top limb has its high bit
        // set, estimate each quotient digit from the top two remainder
        // limbs, and correct with at most two fix-ups.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        let u_big = self.shl(shift);
        let n = v.len();
        let m = u_big.limbs.len() - n;
        let mut u = u_big.limbs;
        u.push(0); // extra high limb for the algorithm
        let mut q = vec![0u32; m + 1];
        let v_top = u64::from(v[n - 1]);
        let v_next = u64::from(v[n - 2]);
        for j in (0..=m).rev() {
            // Estimate q_hat from the top two limbs of the current window.
            let top = (u64::from(u[j + n]) << 32) | u64::from(u[j + n - 1]);
            let mut q_hat = top / v_top;
            let mut r_hat = top % v_top;
            while q_hat >= 1 << 32 || q_hat * v_next > (r_hat << 32 | u64::from(u[j + n - 2])) {
                q_hat -= 1;
                r_hat += v_top;
                if r_hat >= 1 << 32 {
                    break;
                }
            }
            // Multiply-subtract q_hat * v from u[j .. j+n].
            let mut borrow: i64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = q_hat * u64::from(v[i]) + carry;
                carry = p >> 32;
                let sub = i64::from(u[j + i]) - (p as u32 as i64) - borrow;
                if sub < 0 {
                    u[j + i] = (sub + (1 << 32)) as u32;
                    borrow = 1;
                } else {
                    u[j + i] = sub as u32;
                    borrow = 0;
                }
            }
            let sub = i64::from(u[j + n]) - carry as i64 - borrow;
            if sub < 0 {
                // q_hat was one too large: add the divisor back.
                u[j + n] = (sub + (1 << 32)) as u32;
                q_hat -= 1;
                let mut carry: u64 = 0;
                for i in 0..n {
                    let t = u64::from(u[j + i]) + u64::from(v[i]) + carry;
                    u[j + i] = t as u32;
                    carry = t >> 32;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u32);
            } else {
                u[j + n] = sub as u32;
            }
            q[j] = q_hat as u32;
        }
        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        u.truncate(n);
        let mut rem = BigUint { limbs: u };
        rem.normalize();
        rem = rem.shr(shift);
        (quotient, rem)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// `self * other mod m`.
    pub fn mulmod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// `self ^ exp mod m`.
    ///
    /// Odd moduli — every RSA modulus and CRT prime in the study — take
    /// a 4-bit-windowed exponentiation over Montgomery (CIOS)
    /// multiplication, which replaces the full division after every
    /// product with a single word-by-word reduction pass. Even moduli
    /// fall back to [`BigUint::modpow_schoolbook`].
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow modulus is zero");
        if m.limbs == [1] {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        if m.is_odd() {
            modpow_montgomery(self, exp, m)
        } else {
            self.modpow_schoolbook(exp, m)
        }
    }

    /// `self ^ exp mod m` by LSB-first square-and-multiply, one full
    /// division per product. The Montgomery path's correctness oracle
    /// and benchmark baseline, and the fallback for even moduli.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow_schoolbook(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow modulus is zero");
        if m.limbs == [1] {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem(m);
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mulmod(&base, m);
            }
            base = base.mulmod(&base, m);
        }
        result
    }

    /// Modular inverse of `self` modulo `m` via the extended Euclidean
    /// algorithm; `None` if `gcd(self, m) != 1`.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        // Extended Euclid on signed values represented as (sign, magnitude).
        // r_{k+1} = r_{k-1} - q r_k ; track t coefficients only.
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        // t as (negative?, magnitude)
        let mut t0 = (false, BigUint::zero());
        let mut t1 = (false, BigUint::one());
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1
            let qt1 = q.mul(&t1.1);
            let t2 = signed_sub(t0.clone(), (t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0 != BigUint::one() {
            return None;
        }
        // Normalize t0 into [0, m).
        let (neg, mag) = t0;
        let mag = mag.rem(m);
        if neg && !mag.is_zero() {
            Some(m.sub(&mag))
        } else {
            Some(mag)
        }
    }
}

/// Fixed-width Montgomery context for an odd modulus of `k` limbs.
///
/// All values below live as `k`-limb little-endian words (trailing
/// zeros allowed), strictly less than `m`; CIOS keeps products under
/// `2m`, so one conditional subtraction restores the invariant.
struct Montgomery {
    m: Vec<u32>,
    /// `-m^{-1} mod 2^32`.
    n0: u32,
    /// `R^2 mod m` where `R = 2^(32k)` — converts into Montgomery form.
    r2: Vec<u32>,
    /// `R mod m` — the value one in Montgomery form.
    one: Vec<u32>,
}

impl Montgomery {
    fn new(m: &BigUint) -> Montgomery {
        let k = m.limbs.len();
        let m0 = m.limbs[0];
        // Hensel lifting: x ← x·(2 − m0·x) doubles the correct low bits
        // per step; odd m0 starts with 3 correct bits, 4 rounds cover 32.
        let mut inv: u32 = m0;
        for _ in 0..4 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(m0.wrapping_mul(inv)));
        }
        Montgomery {
            m: m.limbs.clone(),
            n0: inv.wrapping_neg(),
            r2: pad_limbs(&BigUint::one().shl(64 * k).rem(m), k),
            one: pad_limbs(&BigUint::one().shl(32 * k).rem(m), k),
        }
    }

    /// `out ← a·b·R^{-1} mod m` (CIOS: interleave each multiplication
    /// word with one reduction word). `a` and `b` may alias each other
    /// but not `out`; `t` is `k + 2` words of scratch.
    fn mul_into(&self, a: &[u32], b: &[u32], t: &mut [u64], out: &mut [u32]) {
        let k = self.m.len();
        t[..k + 2].fill(0);
        for &a_limb in &a[..k] {
            let ai = u64::from(a_limb);
            let mut carry = 0u64;
            for j in 0..k {
                let sum = t[j] + ai * u64::from(b[j]) + carry;
                t[j] = sum & 0xFFFF_FFFF;
                carry = sum >> 32;
            }
            let sum = t[k] + carry;
            t[k] = sum & 0xFFFF_FFFF;
            t[k + 1] += sum >> 32;

            let u = u64::from((t[0] as u32).wrapping_mul(self.n0));
            let mut carry = (t[0] + u * u64::from(self.m[0])) >> 32;
            for j in 1..k {
                let sum = t[j] + u * u64::from(self.m[j]) + carry;
                t[j - 1] = sum & 0xFFFF_FFFF;
                carry = sum >> 32;
            }
            let sum = t[k] + carry;
            t[k - 1] = sum & 0xFFFF_FFFF;
            t[k] = t[k + 1] + (sum >> 32);
            t[k + 1] = 0;
        }
        let ge_m = t[k] != 0 || {
            let mut ge = true;
            for j in (0..k).rev() {
                let tj = t[j] as u32;
                if tj != self.m[j] {
                    ge = tj > self.m[j];
                    break;
                }
            }
            ge
        };
        if ge_m {
            let mut borrow: i64 = 0;
            for j in 0..k {
                let d = t[j] as i64 - i64::from(self.m[j]) - borrow;
                if d < 0 {
                    out[j] = (d + (1 << 32)) as u32;
                    borrow = 1;
                } else {
                    out[j] = d as u32;
                    borrow = 0;
                }
            }
        } else {
            for j in 0..k {
                out[j] = t[j] as u32;
            }
        }
    }
}

fn pad_limbs(v: &BigUint, k: usize) -> Vec<u32> {
    let mut limbs = v.limbs.clone();
    limbs.resize(k, 0);
    limbs
}

/// The 4-bit window of `exp` starting at bit `bit`.
fn window_at(exp: &BigUint, bit: usize) -> usize {
    (0..4).fold(0, |acc, i| acc | usize::from(exp.bit(bit + i)) << i)
}

/// Left-to-right 4-bit-windowed exponentiation over Montgomery
/// multiplication. Requires odd nonzero `m != 1` and nonzero `exp`.
fn modpow_montgomery(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    let k = m.limbs.len();
    let mont = Montgomery::new(m);
    let mut t = vec![0u64; k + 2];

    // table[w] = base^w in Montgomery form, for window values 0..16.
    let base_red = pad_limbs(&base.rem(m), k);
    let mut table = vec![vec![0u32; k]; 16];
    table[0].copy_from_slice(&mont.one);
    mont.mul_into(&base_red, &mont.r2, &mut t, &mut table[1]);
    for w in 2..16 {
        let (lo, hi) = table.split_at_mut(w);
        mont.mul_into(&lo[w - 1], &lo[1], &mut t, &mut hi[0]);
    }

    let windows = exp.bit_len().div_ceil(4);
    let mut acc = vec![0u32; k];
    let mut tmp = vec![0u32; k];
    acc.copy_from_slice(&table[window_at(exp, (windows - 1) * 4)]);
    for wi in (0..windows - 1).rev() {
        for _ in 0..4 {
            mont.mul_into(&acc, &acc, &mut t, &mut tmp);
            core::mem::swap(&mut acc, &mut tmp);
        }
        let w = window_at(exp, wi * 4);
        if w != 0 {
            mont.mul_into(&acc, &table[w], &mut t, &mut tmp);
            core::mem::swap(&mut acc, &mut tmp);
        }
    }

    // Leave Montgomery form: multiply by plain 1.
    let mut one_limb = vec![0u32; k];
    one_limb[0] = 1;
    mont.mul_into(&acc, &one_limb, &mut t, &mut tmp);
    let mut n = BigUint { limbs: tmp };
    n.normalize();
    n
}

/// `(a_sign, a) - (b_sign, b)` on sign/magnitude pairs.
fn signed_sub(a: (bool, BigUint), b: (bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with both positive.
        (false, false) => {
            if a.1.cmp_to(&b.1) != Ordering::Less {
                (false, a.1.sub(&b.1))
            } else {
                (true, b.1.sub(&a.1))
            }
        }
        // a - (-b) = a + b
        (false, true) => (false, a.1.add(&b.1)),
        // -a - b = -(a + b)
        (true, false) => (true, a.1.add(&b.1)),
        // -a - (-b) = b - a
        (true, true) => {
            if b.1.cmp_to(&a.1) != Ordering::Less {
                (false, b.1.sub(&a.1))
            } else {
                (true, a.1.sub(&b.1))
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_to(other)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:08x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn construction_and_bytes() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::from_be_bytes(&[]).to_be_bytes(), Vec::<u8>::new());
        let x = BigUint::from_be_bytes(&[0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(x.to_be_bytes(), vec![0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(x.bit_len(), 33);
        assert_eq!(BigUint::from_be_bytes(&[0, 0, 7]).to_be_bytes(), vec![7]);
        assert_eq!(n(0x1_0000_0001).to_be_bytes(), vec![1, 0, 0, 0, 1]);
    }

    #[test]
    fn padded_bytes() {
        assert_eq!(n(5).to_be_bytes_padded(4), vec![0, 0, 0, 5]);
        assert_eq!(BigUint::zero().to_be_bytes_padded(2), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small_panics() {
        n(0x1_0000).to_be_bytes_padded(2);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = n(u64::MAX);
        let b = n(12345);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.add(&b).sub(&a), b);
        // Carry chain across limbs.
        let c = BigUint::from_be_bytes(&[0xff; 12]);
        assert_eq!(c.add(&BigUint::one()).sub(&BigUint::one()), c);
    }

    #[test]
    fn mul_known_values() {
        assert_eq!(n(0).mul(&n(77)), n(0));
        assert_eq!(n(123456789).mul(&n(987654321)), n(123456789 * 987654321));
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = n(u64::MAX);
        let sq = a.mul(&a);
        let expect = BigUint::one()
            .shl(128)
            .sub(&BigUint::one().shl(65))
            .add(&BigUint::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1).shl(100).shr(100), n(1));
        assert_eq!(n(0b1011).shl(3), n(0b1011000));
        assert_eq!(n(0b1011).shr(2), n(0b10));
        assert_eq!(n(5).shr(64), n(0));
    }

    #[test]
    fn div_rem_properties() {
        let a = BigUint::from_be_bytes(&[0xde, 0xad, 0xbe, 0xef, 0xfe, 0xed, 0xfa, 0xce, 0x01]);
        let b = n(0xabcdef);
        let (q, r) = a.div_rem(&b);
        assert!(r.cmp_to(&b) == Ordering::Less);
        assert_eq!(q.mul(&b).add(&r), a);
        // Divisor bigger than dividend.
        let (q, r) = n(5).div_rem(&n(100));
        assert_eq!(q, n(0));
        assert_eq!(r, n(5));
        // Multi-limb divisor.
        let big = a.mul(&a).add(&n(17));
        let (q, r) = big.div_rem(&a);
        assert_eq!(q.mul(&a).add(&r), big);
        assert_eq!(r, n(17));
    }

    #[test]
    fn modpow_small_cases() {
        // 4^13 mod 497 = 445 (classic example)
        assert_eq!(n(4).modpow(&n(13), &n(497)), n(445));
        // Fermat: a^(p-1) mod p == 1 for prime p, a not divisible by p.
        let p = n(1_000_000_007);
        assert_eq!(n(123456).modpow(&p.sub(&BigUint::one()), &p), n(1));
        // mod 1 is always 0.
        assert_eq!(n(9).modpow(&n(9), &n(1)), n(0));
        // exponent 0 gives 1.
        assert_eq!(n(9).modpow(&n(0), &n(7)), n(1));
    }

    #[test]
    fn montgomery_matches_schoolbook() {
        // Deterministic pseudo-random operands from a SplitMix64 stream,
        // across odd moduli from one limb up to RSA-grade widths.
        let mut state = 0x9E37_79B9_97F4_A7C1u64;
        let mut next = move |bytes: usize| {
            let mut out = Vec::with_capacity(bytes);
            while out.len() < bytes {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                out.extend_from_slice(&z.to_be_bytes());
            }
            out.truncate(bytes);
            out
        };
        for bytes in [3usize, 4, 8, 16, 24, 48, 96] {
            let mut m_bytes = next(bytes);
            m_bytes[0] |= 0x80; // full width
            m_bytes[bytes - 1] |= 1; // odd
            let m = BigUint::from_be_bytes(&m_bytes);
            for _ in 0..4 {
                let a = BigUint::from_be_bytes(&next(bytes + 2));
                let e = BigUint::from_be_bytes(&next(bytes / 2 + 1));
                assert_eq!(
                    a.modpow(&e, &m),
                    a.modpow_schoolbook(&e, &m),
                    "bytes={bytes} a={a:?} e={e:?} m={m:?}"
                );
            }
        }
    }

    #[test]
    fn montgomery_and_schoolbook_edge_cases() {
        // Even modulus takes the schoolbook fallback inside modpow.
        assert_eq!(
            n(7).modpow(&n(5), &n(36)),
            n(7).modpow_schoolbook(&n(5), &n(36))
        );
        // Base ≥ m, base ≡ 0 mod m, exponent one.
        let m = n(0xFFFF_FFFF_FFFF_FFC5); // odd
        assert_eq!(n(5).mul(&m).modpow(&n(3), &m), n(0));
        assert_eq!(n(12345).modpow(&n(1), &m), n(12345));
        // Schoolbook shares modpow's m==1 / exp==0 contract.
        assert_eq!(n(9).modpow_schoolbook(&n(9), &n(1)), n(0));
        assert_eq!(n(9).modpow_schoolbook(&n(0), &n(7)), n(1));
    }

    #[test]
    fn modinv_basics() {
        // 3 * 4 = 12 ≡ 1 mod 11
        assert_eq!(n(3).modinv(&n(11)), Some(n(4)));
        // gcd(6, 9) = 3: no inverse.
        assert_eq!(n(6).modinv(&n(9)), None);
        // e=65537 mod a typical phi.
        let phi = n(3_233_462_989_238_497_280);
        let e = n(65537);
        let d = e.modinv(&phi).unwrap();
        assert_eq!(e.mulmod(&d, &phi), BigUint::one());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        n(1).sub(&n(2));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        n(1).div_rem(&n(0));
    }

    #[test]
    fn ordering() {
        assert!(n(5) < n(6));
        assert!(BigUint::one().shl(64) > n(u64::MAX));
        assert_eq!(n(7).cmp_to(&n(7)), Ordering::Equal);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", n(0)), "0x0");
        assert_eq!(format!("{:?}", n(0xdeadbeef)), "0xdeadbeef");
        assert_eq!(format!("{:?}", n(0x1_0000_0000)), "0x100000000");
    }
}
