//! Property tests for the big-integer arithmetic, with special attention
//! to Knuth Algorithm D division (the fiddliest code in the crate).

use mustaple_simcrypto::BigUint;
use proptest::prelude::*;

fn big(bytes: &[u8]) -> BigUint {
    BigUint::from_be_bytes(bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn division_identity(a in proptest::collection::vec(any::<u8>(), 0..40),
                         b in proptest::collection::vec(any::<u8>(), 1..24)) {
        let a = big(&a);
        let b = big(&b);
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        // a == q*b + r and r < b
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r.cmp_to(&b) == core::cmp::Ordering::Less);
    }

    #[test]
    fn add_sub_inverse(a in proptest::collection::vec(any::<u8>(), 0..40),
                       b in proptest::collection::vec(any::<u8>(), 0..40)) {
        let a = big(&a);
        let b = big(&b);
        prop_assert_eq!(a.add(&b).sub(&b), a.clone());
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn mul_distributes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (BigUint::from_u64(a), BigUint::from_u64(b), BigUint::from_u64(c));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let n = big(&bytes);
        let back = BigUint::from_be_bytes(&n.to_be_bytes());
        prop_assert_eq!(back, n);
    }

    #[test]
    fn shifts_are_mul_div_by_powers(a in proptest::collection::vec(any::<u8>(), 0..32),
                                    s in 0usize..80) {
        let a = big(&a);
        let pow = BigUint::one().shl(s);
        prop_assert_eq!(a.shl(s), a.mul(&pow));
        prop_assert_eq!(a.shr(s), a.div_rem(&pow).0);
    }

    #[test]
    fn modpow_matches_naive(base in 0u64..1000, exp in 0u32..24, m in 2u64..100_000) {
        let m_big = BigUint::from_u64(m);
        let got = BigUint::from_u64(base).modpow(&BigUint::from_u64(u64::from(exp)), &m_big);
        // Naive reference using u128.
        let mut acc: u128 = 1;
        for _ in 0..exp {
            acc = acc * u128::from(base) % u128::from(m);
        }
        prop_assert_eq!(got, BigUint::from_u64(acc as u64));
    }

    #[test]
    fn modinv_really_inverts(a in 1u64..u64::MAX, m in 3u64..u64::MAX) {
        let a = BigUint::from_u64(a);
        let m = BigUint::from_u64(m);
        if let Some(inv) = a.modinv(&m) {
            prop_assert_eq!(a.mulmod(&inv, &m), BigUint::one());
            prop_assert!(inv.cmp_to(&m) == core::cmp::Ordering::Less);
        }
    }

    /// Stress exactly the Algorithm D q_hat fix-up path: divisors whose
    /// top limb is large and dividends built to sit near digit boundaries.
    #[test]
    fn division_near_digit_boundaries(top in (1u32 << 31)..=u32::MAX,
                                      lows in proptest::collection::vec(any::<u32>(), 1..4),
                                      q in any::<u64>(), extra in any::<u32>()) {
        // divisor = [lows..., top]; dividend = divisor * q + extra
        let mut div_bytes = top.to_be_bytes().to_vec();
        for l in &lows {
            div_bytes.extend_from_slice(&l.to_be_bytes());
        }
        let divisor = big(&div_bytes);
        let dividend = divisor.mul(&BigUint::from_u64(q)).add(&BigUint::from_u64(u64::from(extra)));
        let (got_q, got_r) = dividend.div_rem(&divisor);
        prop_assert_eq!(got_q.mul(&divisor).add(&got_r), dividend);
        prop_assert!(got_r.cmp_to(&divisor) == core::cmp::Ordering::Less);
    }
}
