//! Vendored stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container has no crates.io registry, so this crate
//! implements exactly the slice of the proptest 1.x API that the
//! workspace's property tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, [`any`], numeric range
//! strategies, a regex-subset string strategy, [`collection::vec`],
//! [`option::of`], [`Just`], [`prop_oneof!`], the `prop_assert*`
//! macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream are deliberate and small: inputs are
//! generated from a deterministic per-test seed (the FNV-1a hash of the
//! test name), there is no shrinking, and failure messages report the
//! failing case index instead of a minimized input. Determinism means a
//! failure reproduces exactly by re-running the same test binary.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

pub use crate::strategy::{Just, Strategy};

/// Core strategy abstraction and combinators.
pub mod strategy {
    use super::*;

    /// A source of random values of one type.
    ///
    /// Unlike upstream proptest there is no value tree or shrinking:
    /// `generate` draws one concrete value.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform every generated value through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The combinator behind [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (behind [`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from at least one arm.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// Types with a canonical "any value" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty => $m:ident),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}

arbitrary_ints!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64
);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full range of values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is uniform in `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            len.start < len.end,
            "empty length range for collection::vec"
        );
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy for `Option<S::Value>` (`None` half the time).
    pub struct OptionStrategy<S>(S);

    /// `Some` of the inner strategy or `None`, equiprobably.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Generation from the small regex subset used as string strategies.
pub mod string {
    use super::*;

    enum Atom {
        /// A set of candidate characters (from `[...]`, `\PC`, or a literal).
        Class(Vec<char>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Parse the supported regex subset: literals, `[...]` classes with
    /// ranges, `\PC` (printable), and `{m}` / `{m,n}` quantifiers.
    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            set.extend(lo..=hi);
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // consume ']'
                    Atom::Class(set)
                }
                '\\' => {
                    // Only `\PC` (a printable character) is supported.
                    assert!(
                        chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                        "unsupported escape in pattern {pattern:?}"
                    );
                    i += 3;
                    Atom::Class((' '..='~').collect())
                }
                c => {
                    i += 1;
                    Atom::Class(vec![c])
                }
            };
            let (mut min, mut max) = (1, 1);
            if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        min = lo.trim().parse().expect("bad quantifier");
                        max = hi.trim().parse().expect("bad quantifier");
                    }
                    None => {
                        min = body.trim().parse().expect("bad quantifier");
                        max = min;
                    }
                }
                assert!(min <= max, "bad quantifier in {pattern:?}");
                i = close + 1;
            }
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Generate one string matching `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = rng.gen_range(piece.min..=piece.max);
            let Atom::Class(set) = &piece.atom;
            assert!(!set.is_empty(), "empty class in {pattern:?}");
            for _ in 0..count {
                out.push(set[rng.gen_range(0..set.len())]);
            }
        }
        out
    }
}

/// Test configuration, error type, and the driver behind [`proptest!`].
pub mod test_runner {
    use super::strategy::Strategy;
    use super::*;
    use rand::SeedableRng;

    /// How a single proptest case can fail.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The input was rejected (e.g. by `prop_assume!`); does not
        /// count as a failure, another input is drawn instead.
        Reject(String),
    }

    impl TestCaseError {
        /// A property violation.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// An input rejection.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted inputs each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config that runs `cases` inputs per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    fn seed_from_name(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Drive one property: draw inputs from `strategy` until `cases`
    /// of them are accepted, panicking on the first failure.
    ///
    /// The RNG is seeded from the test name, so each test's input
    /// sequence is stable across runs and machines.
    pub fn run_proptest<S, F>(config: &ProptestConfig, name: &str, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = StdRng::seed_from_u64(seed_from_name(name));
        let mut accepted: u32 = 0;
        let mut rejected: u32 = 0;
        let max_rejects = config.cases.saturating_mul(16).max(1024);
        while accepted < config.cases {
            let input = strategy.generate(&mut rng);
            match test(input) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest {name}: too many rejected inputs \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest {name}: property failed at case {accepted} \
                         (deterministic seed; rerun reproduces): {reason}"
                    );
                }
            }
        }
    }
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: one test fn per recursion step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(
                &$config,
                stringify!($name),
                &($($strat,)+),
                |($($arg,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!`, but fails the current proptest case instead of
/// panicking directly (must be used where `Result<_, TestCaseError>`
/// can be returned).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            concat!("assertion failed: ", stringify!($left), " == ", stringify!($right))
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Reject the current input (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9-]{0,14}[a-z0-9]".generate(&mut rng);
            assert!(s.len() >= 2 && s.len() <= 16, "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let last = s.chars().last().unwrap();
            assert!(last.is_ascii_lowercase() || last.is_ascii_digit());
        }
        for _ in 0..200 {
            let s = "\\PC{1,40}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = crate::collection::vec(any::<u8>(), 3..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = crate::option::of(0u64..10);
        let values: Vec<_> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: args, assume, assert, oneof.
        #[test]
        fn macro_round_trip(
            v in any::<i64>(),
            s in "[a-d]{2,5}",
            choice in prop_oneof![Just(1u8), Just(2u8), 3u8..=9],
        ) {
            prop_assume!(v != i64::MIN);
            prop_assert!(v.abs() >= 0 || v == i64::MIN);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert!((1..=9).contains(&choice), "choice {} out of range", choice);
        }
    }
}
