//! Browser revocation-behavior models.
//!
//! §6 of the paper tests 16 browser/OS combinations against a controlled
//! domain serving a Must-Staple certificate *without* a staple, and
//! records three behaviors (its Table 2):
//!
//! 1. **Request OCSP response** — does the ClientHello carry
//!    `status_request`? (All 16 do.)
//! 2. **Respect OCSP Must-Staple** — is the unstapled connection
//!    refused? (Only Firefox on the three desktop OSes and on Android.)
//! 3. **Send own OCSP request** — do the accepting browsers at least
//!    fall back to contacting the responder themselves? (None do.)
//!
//! [`profile`] encodes the measured matrix; [`client`] turns a profile
//! into an actual TLS client that produces handshake bytes and verdicts;
//! [`testsuite`] is the §6 methodology as a harness and regenerates
//! Table 2.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod profile;
pub mod testsuite;

pub use client::{BrowserClient, ClientOutcome, NoTransport, OcspTransport, RejectReason, Verdict};
pub use profile::{BrowserProfile, Os, BROWSER_MATRIX};
pub use testsuite::{run_browser_suite, SuiteRow};
