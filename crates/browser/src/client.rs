//! A browser profile turned into an actual TLS client.
//!
//! [`BrowserClient::connect`] drives a real handshake against a
//! [`webserver::StaplingServer`], validates the chain, applies the
//! profile's revocation policy, and reports both the verdict and the
//! observable side effects (did it solicit a staple? did it make its own
//! OCSP request?) — the three observables of Table 2.

use crate::profile::BrowserProfile;
use asn1::Time;
use ocsp::{validate_response, CertId, CertStatus, OcspRequest, ResponseError, ValidationConfig};
use pki::{validate_chain, Certificate, ChainError, RootStore};
use tls::wire::ClientHello;
use tls::Transcript;
use webserver::{OcspFetcher, StaplingServer};

/// Why a connection was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Chain validation failed.
    BadChain(ChainError),
    /// The certificate demands a staple and none was provided (the
    /// Must-Staple hard-fail).
    MustStapleViolation,
    /// A staple was provided but did not validate.
    BadStaple(ResponseError),
    /// The stapled (or separately fetched) status was Revoked.
    CertificateRevoked,
}

/// The client's decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Connection proceeds.
    Accepted,
    /// Connection refused (certificate error page).
    Rejected(RejectReason),
}

impl Verdict {
    /// Whether the connection proceeded.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Verdict::Accepted)
    }
}

/// How the client would reach an OCSP responder for its *own* lookup.
pub trait OcspTransport {
    /// POST `body` to `url`; `None` models an unreachable responder.
    fn post(&mut self, url: &str, body: &[u8], now: Time) -> Option<Vec<u8>>;
}

/// A transport for clients that never fetch (the common case in the
/// matrix) or tests that must prove no fetch happened.
pub struct NoTransport {
    /// Number of times a fetch was attempted anyway.
    pub attempts: u32,
}

impl NoTransport {
    /// A fresh counter.
    pub fn new() -> NoTransport {
        NoTransport { attempts: 0 }
    }
}

impl Default for NoTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl OcspTransport for NoTransport {
    fn post(&mut self, _url: &str, _body: &[u8], _now: Time) -> Option<Vec<u8>> {
        self.attempts += 1;
        None
    }
}

/// Everything observable about one connection attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutcome {
    /// The decision.
    pub verdict: Verdict,
    /// Whether the ClientHello carried `status_request` (verified from
    /// the wire bytes, as the paper did with packet captures).
    pub sent_status_request: bool,
    /// Whether the client issued its own OCSP request after missing a
    /// staple.
    pub sent_own_ocsp: bool,
    /// The handshake transcript, for further inspection.
    pub transcript: Transcript,
}

/// A browser client.
pub struct BrowserClient {
    /// The behavior profile.
    pub profile: BrowserProfile,
}

impl BrowserClient {
    /// A client with the given profile.
    pub fn new(profile: BrowserProfile) -> BrowserClient {
        BrowserClient { profile }
    }

    /// Connect to `server` for `host` at `now`, trusting `roots`.
    ///
    /// `server_fetcher` is the *server's* path to its CA (used by server
    /// models that fetch on demand); `own_transport` is the *client's*
    /// path, used only by profiles with `sends_own_ocsp`.
    pub fn connect(
        &self,
        server: &mut dyn StaplingServer,
        server_fetcher: &mut dyn OcspFetcher,
        own_transport: &mut dyn OcspTransport,
        host: &str,
        roots: &RootStore,
        now: Time,
    ) -> ClientOutcome {
        let hello = ClientHello::new(host, self.profile.sends_status_request);
        let flight = server.serve(now, server_fetcher);
        let transcript = Transcript::record(&hello, &flight);

        let mut outcome = ClientOutcome {
            verdict: Verdict::Accepted,
            sent_status_request: transcript.client_solicited_staple().unwrap_or(false),
            sent_own_ocsp: false,
            transcript,
        };

        // 1. Chain validation.
        let chain = match outcome.transcript.server_chain() {
            Ok(chain) => chain,
            Err(_) => {
                outcome.verdict = Verdict::Rejected(RejectReason::BadChain(ChainError::EmptyChain));
                return outcome;
            }
        };
        if let Err(e) = validate_chain(&chain, roots, now, Some(host)) {
            outcome.verdict = Verdict::Rejected(RejectReason::BadChain(e));
            return outcome;
        }
        let leaf = &chain[0];
        let issuer = issuer_of(leaf, &chain, roots);

        // 2. Staple handling.
        let staple = outcome.transcript.stapled_ocsp().unwrap_or(None);
        match (staple, issuer) {
            (Some(bytes), Some(issuer)) => {
                let cert_id = CertId::for_certificate(leaf, &issuer);
                match validate_response(&bytes, &cert_id, &issuer, now, ValidationConfig::default())
                {
                    Ok(validated) => match validated.status {
                        CertStatus::Good | CertStatus::Unknown => {}
                        CertStatus::Revoked { .. } => {
                            outcome.verdict = Verdict::Rejected(RejectReason::CertificateRevoked);
                            return outcome;
                        }
                    },
                    Err(err) => {
                        // An invalid staple on a Must-Staple certificate
                        // is a hard failure for respecting clients;
                        // everyone else shrugs (soft fail).
                        if leaf.has_must_staple() && self.profile.respects_must_staple {
                            outcome.verdict = Verdict::Rejected(RejectReason::BadStaple(err));
                            return outcome;
                        }
                    }
                }
            }
            (None, _) => {
                // No staple.
                if leaf.has_must_staple() && self.profile.respects_must_staple {
                    outcome.verdict = Verdict::Rejected(RejectReason::MustStapleViolation);
                    return outcome;
                }
                // Soft-failing browsers may or may not bother with their
                // own lookup; the measured matrix says none do, but the
                // model supports it for what-if experiments.
                if self.profile.sends_own_ocsp {
                    if let Some(issuer) = issuer_of(leaf, &chain, roots) {
                        outcome.sent_own_ocsp = true;
                        let cert_id = CertId::for_certificate(leaf, &issuer);
                        for url in leaf.ocsp_urls() {
                            let req = OcspRequest::single(cert_id.clone()).to_der();
                            if let Some(body) = own_transport.post(&url, &req, now) {
                                if let Ok(validated) = validate_response(
                                    &body,
                                    &cert_id,
                                    &issuer,
                                    now,
                                    ValidationConfig::default(),
                                ) {
                                    if let CertStatus::Revoked { .. } = validated.status {
                                        outcome.verdict =
                                            Verdict::Rejected(RejectReason::CertificateRevoked);
                                        return outcome;
                                    }
                                    break;
                                }
                            }
                        }
                        // Soft fail: unreachable/invalid → accept anyway.
                    }
                }
            }
            (Some(_), None) => {
                // Staple but no identifiable issuer: treat as no staple.
                if leaf.has_must_staple() && self.profile.respects_must_staple {
                    outcome.verdict = Verdict::Rejected(RejectReason::MustStapleViolation);
                    return outcome;
                }
            }
        }
        outcome
    }
}

/// Locate the leaf's issuer certificate in the presented chain or the
/// root store.
fn issuer_of(leaf: &Certificate, chain: &[Certificate], roots: &RootStore) -> Option<Certificate> {
    chain
        .iter()
        .skip(1)
        .find(|c| c.subject() == leaf.issuer())
        .cloned()
        .or_else(|| roots.find_issuer(leaf.issuer()).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BROWSER_MATRIX;
    use webserver::experiment::TestBench;
    use webserver::{Apache, Ideal, ScriptedFetcher};

    fn t0() -> Time {
        Time::from_civil(2018, 6, 1, 0, 0, 0)
    }

    fn bench() -> TestBench {
        TestBench::new(88, t0())
    }

    fn roots(bench: &TestBench) -> RootStore {
        let mut store = RootStore::new("test");
        // The bench chain's last element is the root.
        store.add(bench.site.chain.last().unwrap().clone());
        store
    }

    fn firefox() -> BrowserClient {
        BrowserClient::new(
            *BROWSER_MATRIX
                .iter()
                .find(|p| p.name == "Firefox 60")
                .unwrap(),
        )
    }

    fn chrome() -> BrowserClient {
        BrowserClient::new(
            *BROWSER_MATRIX
                .iter()
                .find(|p| p.name == "Chrome 66")
                .unwrap(),
        )
    }

    #[test]
    fn firefox_rejects_unstapled_must_staple() {
        let b = bench();
        let store = roots(&b);
        // Stapling disabled: server that never staples = Apache with a
        // dead responder and no cache.
        let mut server = Apache::new(b.site.clone());
        let mut fetcher = ScriptedFetcher::down();
        let outcome = firefox().connect(
            &mut server,
            &mut fetcher,
            &mut NoTransport::new(),
            "bench.example",
            &store,
            t0(),
        );
        assert!(outcome.sent_status_request);
        assert_eq!(
            outcome.verdict,
            Verdict::Rejected(RejectReason::MustStapleViolation)
        );
    }

    #[test]
    fn chrome_accepts_unstapled_must_staple_without_own_fetch() {
        let b = bench();
        let store = roots(&b);
        let mut server = Apache::new(b.site.clone());
        let mut fetcher = ScriptedFetcher::down();
        let mut transport = NoTransport::new();
        let outcome = chrome().connect(
            &mut server,
            &mut fetcher,
            &mut transport,
            "bench.example",
            &store,
            t0(),
        );
        assert!(outcome.sent_status_request);
        assert!(outcome.verdict.is_accepted());
        assert!(!outcome.sent_own_ocsp);
        assert_eq!(transport.attempts, 0);
    }

    #[test]
    fn firefox_accepts_when_staple_arrives() {
        let b = bench();
        let store = roots(&b);
        let mut server = Ideal::new(b.site.clone());
        let mut fetcher = b.live_fetcher(7 * 86_400);
        server.tick(t0(), &mut fetcher);
        let outcome = firefox().connect(
            &mut server,
            &mut fetcher,
            &mut NoTransport::new(),
            "bench.example",
            &store,
            t0() + 60,
        );
        assert!(
            outcome.verdict.is_accepted(),
            "verdict: {:?}",
            outcome.verdict
        );
    }

    #[test]
    fn unknown_root_rejected_by_everyone() {
        let b = bench();
        let empty = RootStore::new("empty");
        let mut server = Ideal::new(b.site.clone());
        let mut fetcher = b.live_fetcher(7 * 86_400);
        server.tick(t0(), &mut fetcher);
        for profile in BROWSER_MATRIX {
            let outcome = BrowserClient::new(profile).connect(
                &mut server,
                &mut fetcher,
                &mut NoTransport::new(),
                "bench.example",
                &empty,
                t0() + 60,
            );
            assert!(
                matches!(
                    outcome.verdict,
                    Verdict::Rejected(RejectReason::BadChain(_))
                ),
                "{}",
                profile.label()
            );
        }
    }

    #[test]
    fn hypothetical_fallback_client_fetches_own_ocsp() {
        // A what-if profile: soft-fail but with its own OCSP lookup.
        let b = bench();
        let store = roots(&b);
        let mut profile = *BROWSER_MATRIX.first().unwrap();
        profile.sends_own_ocsp = true;
        let mut server = Apache::new(b.site.clone());
        let mut fetcher = ScriptedFetcher::down();
        let mut transport = NoTransport::new();
        let outcome = BrowserClient::new(profile).connect(
            &mut server,
            &mut fetcher,
            &mut transport,
            "bench.example",
            &store,
            t0(),
        );
        assert!(outcome.sent_own_ocsp);
        assert_eq!(transport.attempts, 1);
        // Responder unreachable → soft fail → accepted.
        assert!(outcome.verdict.is_accepted());
    }
}
