//! The Table 2 browser matrix.
//!
//! Sixteen browser/OS combinations, with the three behaviors the paper
//! measured in May 2018. The matrix is data, not code: the *client
//! logic* lives in [`crate::client`] and is shared by all profiles.

/// Operating systems in the test matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Os {
    /// macOS 10.12.6.
    OsX,
    /// Ubuntu 16.04.
    Linux,
    /// Windows 10.
    Windows,
    /// iOS 11.3.
    Ios,
    /// Android Oreo.
    Android,
}

impl Os {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Os::OsX => "OS X",
            Os::Linux => "Lin.",
            Os::Windows => "Win.",
            Os::Ios => "iOS",
            Os::Android => "And.",
        }
    }

    /// Whether this is a mobile OS.
    pub fn is_mobile(self) -> bool {
        matches!(self, Os::Ios | Os::Android)
    }
}

/// One browser/OS combination and its measured behaviors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrowserProfile {
    /// Browser name and version as the paper lists it.
    pub name: &'static str,
    /// Operating system.
    pub os: Os,
    /// Sends the Certificate Status Request extension (Table 2 row 1).
    pub sends_status_request: bool,
    /// Hard-fails a Must-Staple certificate without a staple (row 2).
    pub respects_must_staple: bool,
    /// Falls back to its own OCSP fetch when no staple arrives (row 3;
    /// meaningless for browsers that reject, rendered "-" in the paper).
    pub sends_own_ocsp: bool,
}

impl BrowserProfile {
    /// Display label, e.g. "Firefox 60 (Lin.)".
    pub fn label(&self) -> String {
        format!("{} ({})", self.name, self.os.label())
    }

    /// Whether this profile is a mobile browser.
    pub fn is_mobile(&self) -> bool {
        self.os.is_mobile()
    }
}

/// Helper to keep the matrix readable.
const fn profile(name: &'static str, os: Os, respects_must_staple: bool) -> BrowserProfile {
    BrowserProfile {
        name,
        os,
        // Row 1 of Table 2 is ✓ across the board: every tested browser
        // solicits stapled responses.
        sends_status_request: true,
        respects_must_staple,
        // Row 3 is ✗ across the board: no accepting browser falls back
        // to its own OCSP request in this experiment.
        sends_own_ocsp: false,
    }
}

/// The measured May-2018 matrix (Table 2), in the paper's column order.
///
/// Only Firefox 60 on the desktop OSes and Firefox on Android respect
/// Must-Staple; Firefox on iOS does not (it is WebKit underneath — iOS
/// policy requires Apple's engine).
pub const BROWSER_MATRIX: [BrowserProfile; 16] = [
    // Desktop.
    profile("Chrome 66", Os::OsX, false),
    profile("Chrome 66", Os::Linux, false),
    profile("Chrome 66", Os::Windows, false),
    profile("Firefox 60", Os::OsX, true),
    profile("Firefox 60", Os::Linux, true),
    profile("Firefox 60", Os::Windows, true),
    profile("Opera", Os::OsX, false),
    profile("Opera", Os::Windows, false),
    profile("Safari 11", Os::OsX, false),
    profile("IE 11", Os::Windows, false),
    profile("Edge 42", Os::Windows, false),
    // Mobile.
    profile("Safari", Os::Ios, false),
    profile("Chrome", Os::Ios, false),
    profile("Chrome", Os::Android, false),
    profile("Firefox", Os::Ios, false),
    profile("Firefox", Os::Android, true),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_combinations() {
        assert_eq!(BROWSER_MATRIX.len(), 16);
    }

    #[test]
    fn all_solicit_staples() {
        assert!(BROWSER_MATRIX.iter().all(|p| p.sends_status_request));
    }

    #[test]
    fn only_firefox_desktop_and_android_respect() {
        let respecting: Vec<_> = BROWSER_MATRIX
            .iter()
            .filter(|p| p.respects_must_staple)
            .collect();
        assert_eq!(respecting.len(), 4);
        assert!(respecting.iter().all(|p| p.name.starts_with("Firefox")));
        assert!(respecting.iter().any(|p| p.os == Os::Android));
        // The paper's headline iOS gap.
        assert!(
            !BROWSER_MATRIX
                .iter()
                .find(|p| p.name == "Firefox" && p.os == Os::Ios)
                .unwrap()
                .respects_must_staple
        );
    }

    #[test]
    fn none_send_own_ocsp() {
        assert!(BROWSER_MATRIX.iter().all(|p| !p.sends_own_ocsp));
    }

    #[test]
    fn mobile_split() {
        assert_eq!(BROWSER_MATRIX.iter().filter(|p| p.is_mobile()).count(), 5);
        assert_eq!(BROWSER_MATRIX.iter().filter(|p| !p.is_mobile()).count(), 11);
    }

    #[test]
    fn labels() {
        assert_eq!(BROWSER_MATRIX[3].label(), "Firefox 60 (OS X)");
        assert!(Os::Android.is_mobile());
        assert!(!Os::Linux.is_mobile());
    }
}
