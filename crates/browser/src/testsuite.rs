//! The §6 browser test suite — regenerates Table 2.
//!
//! Methodology, as in the paper: obtain a Must-Staple certificate for a
//! controlled domain, serve it from a web server with OCSP Stapling
//! deliberately disabled (`SSLUseStapling off`), point every browser at
//! it, and capture (1) whether the ClientHello solicits a staple,
//! (2) whether the connection is refused, (3) whether the browser makes
//! its own OCSP request.

use crate::client::{BrowserClient, OcspTransport};
use crate::profile::{BrowserProfile, BROWSER_MATRIX};
use asn1::Time;
use pki::RootStore;
use tls::ServerFlight;
use webserver::experiment::TestBench;
use webserver::server::{ServerKind, SiteConfig, StaplingServer};
use webserver::{OcspFetcher, ScriptedFetcher};

/// A server with stapling turned off — the paper's
/// `SSLUseStapling off` Apache configuration.
pub struct StaplingDisabled {
    site: SiteConfig,
}

impl StaplingDisabled {
    /// Wrap a site.
    pub fn new(site: SiteConfig) -> StaplingDisabled {
        StaplingDisabled { site }
    }
}

impl StaplingServer for StaplingDisabled {
    fn kind(&self) -> ServerKind {
        // Reported as Apache: that is what the paper ran.
        ServerKind::Apache
    }

    fn serve(&mut self, _now: Time, _fetcher: &mut dyn OcspFetcher) -> ServerFlight {
        self.site.flight(None, 0.0)
    }

    fn tick(&mut self, _now: Time, _fetcher: &mut dyn OcspFetcher) {}
}

/// A transport that records whether the browser contacted the responder.
struct CountingTransport {
    posts: u32,
}

impl OcspTransport for CountingTransport {
    fn post(&mut self, _url: &str, _body: &[u8], _now: Time) -> Option<Vec<u8>> {
        self.posts += 1;
        None
    }
}

/// One row of the regenerated Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteRow {
    /// Which browser/OS.
    pub profile: BrowserProfile,
    /// Observed: ClientHello carried `status_request`.
    pub requested_ocsp: bool,
    /// Observed: connection refused on the unstapled Must-Staple cert.
    pub respected_must_staple: bool,
    /// Observed: browser made its own OCSP request. `None` renders as
    /// "-" (not applicable: the browser rejected the connection).
    pub sent_own_ocsp: Option<bool>,
}

/// Run the suite for every profile in the matrix.
pub fn run_browser_suite(bench: &TestBench, roots: &RootStore, now: Time) -> Vec<SuiteRow> {
    BROWSER_MATRIX
        .iter()
        .map(|profile| run_one(bench, roots, now, *profile))
        .collect()
}

/// Run the suite for one profile.
pub fn run_one(
    bench: &TestBench,
    roots: &RootStore,
    now: Time,
    profile: BrowserProfile,
) -> SuiteRow {
    let mut server = StaplingDisabled::new(bench.site.clone());
    let mut fetcher = ScriptedFetcher::down();
    let mut transport = CountingTransport { posts: 0 };
    let client = BrowserClient::new(profile);
    let outcome = client.connect(
        &mut server,
        &mut fetcher,
        &mut transport,
        "bench.example",
        roots,
        now,
    );
    let rejected = !outcome.verdict.is_accepted();
    SuiteRow {
        profile,
        requested_ocsp: outcome.sent_status_request,
        respected_must_staple: rejected,
        sent_own_ocsp: if rejected {
            None
        } else {
            Some(transport.posts > 0)
        },
    }
}

/// Render rows in the paper's Table 2 layout (✓ / ✗ / -).
pub fn render_table2(rows: &[SuiteRow]) -> String {
    fn mark(b: bool) -> &'static str {
        if b {
            "\u{2713}"
        } else {
            "\u{2717}"
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:28}| Req OCSP | Respect MS | Own OCSP\n",
        "Browser"
    ));
    for row in rows {
        let own = match row.sent_own_ocsp {
            None => "-",
            Some(b) => mark(b),
        };
        out.push_str(&format!(
            "{:28}| {:8} | {:10} | {}\n",
            row.profile.label(),
            mark(row.requested_ocsp),
            mark(row.respected_must_staple),
            own
        ));
    }
    out
}

/// Convenience: verify a verdict matches the matrix expectation.
pub fn row_matches_paper(row: &SuiteRow) -> bool {
    row.requested_ocsp == row.profile.sends_status_request
        && row.respected_must_staple == row.profile.respects_must_staple
        && match row.sent_own_ocsp {
            None => row.profile.respects_must_staple,
            Some(sent) => sent == row.profile.sends_own_ocsp,
        }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TestBench, RootStore, Time) {
        let t0 = Time::from_civil(2018, 6, 1, 0, 0, 0);
        let bench = TestBench::new(99, t0);
        let mut roots = RootStore::new("suite");
        roots.add(bench.site.chain.last().unwrap().clone());
        (bench, roots, t0)
    }

    #[test]
    fn suite_reproduces_table2_exactly() {
        let (bench, roots, t0) = setup();
        let rows = run_browser_suite(&bench, &roots, t0);
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert!(
                row_matches_paper(row),
                "mismatch for {}",
                row.profile.label()
            );
        }
        // Spot-check the headline results.
        let respecting = rows.iter().filter(|r| r.respected_must_staple).count();
        assert_eq!(respecting, 4, "only Firefox desktop x3 + Android");
        assert!(rows.iter().all(|r| r.requested_ocsp));
        assert!(rows
            .iter()
            .filter_map(|r| r.sent_own_ocsp)
            .all(|sent| !sent));
    }

    #[test]
    fn rendered_table_has_all_browsers_and_dashes() {
        let (bench, roots, t0) = setup();
        let rows = run_browser_suite(&bench, &roots, t0);
        let table = render_table2(&rows);
        assert!(table.contains("Firefox 60 (Lin.)"));
        assert!(table.contains("Safari (iOS)"));
        assert!(
            table.contains('-'),
            "rejecting browsers render '-' for own-OCSP"
        );
        assert!(table.contains('\u{2713}'));
        assert!(table.contains('\u{2717}'));
    }
}
