//! The deterministic service core behind the daemon's routes.
//!
//! Every piece of state is a pure function of the seed and the request
//! sequence: the PKI fixture is generated from a seeded RNG, the clock
//! is simulated (it advances one fixed step per `/ocsp` request and
//! never reads the host's), and all counting goes through
//! [`telemetry::Registry`]. That is what lets the CI live-smoke job
//! assert a *live* scrape byte-for-byte against an in-process replay.

use crate::http::{HttpRequest, HttpResponse};
use asn1::Time;
use ocsp::{CertId, OcspRequest, Responder, ResponderProfile};
use opsmon::{EventLog, HealthLog, HealthPolicy, HealthReport};
use pki::{CertificateAuthority, IssueParams};
use rand::{rngs::StdRng, SeedableRng};
use telemetry::{catalog, Registry};

/// The campaign epoch (2018-04-25T00:00:00Z), shared with the offline
/// studies so live timestamps land on the same simulated timeline.
pub const CAMPAIGN_EPOCH_UNIX: i64 = 1_524_614_400;

/// The health-log subject for the single backend the daemon fronts.
const BACKEND: &str = "ocsp.live.test";

/// A simulated clock: starts at the campaign epoch and advances a fixed
/// step per `/ocsp` request. Scrapes never advance it, so observing the
/// service does not perturb it.
#[derive(Debug, Clone, Copy)]
pub struct SimClock {
    epoch: Time,
    step_secs: i64,
    ticks: i64,
}

impl SimClock {
    /// A clock at `epoch` advancing `step_secs` per tick.
    pub fn new(epoch: Time, step_secs: i64) -> SimClock {
        assert!(step_secs > 0, "the clock must move forward");
        SimClock {
            epoch,
            step_secs,
            ticks: 0,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> Time {
        self.epoch + self.ticks * self.step_secs
    }

    /// Return the current instant, then advance one step.
    pub fn tick(&mut self) -> Time {
        let now = self.now();
        self.ticks += 1;
        now
    }
}

/// A deterministic request sequence shared by the live probe client and
/// the offline replay: `total` requests, every `malformed_every`-th one
/// garbage bytes instead of the canonical DER request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestPlan {
    /// Requests to issue.
    pub total: u64,
    /// Every n-th request is garbage (`0` = never) — it drives the
    /// health-state machine through real transitions.
    pub malformed_every: u64,
}

impl RequestPlan {
    /// The body of request `i` (0-based).
    pub fn body(&self, i: u64, canonical: &[u8]) -> Vec<u8> {
        if self.malformed_every > 0 && (i + 1).is_multiple_of(self.malformed_every) {
            b"not-a-der-ocsp-request".to_vec()
        } else {
            canonical.to_vec()
        }
    }
}

/// The service: one CA, one responder, one simulated clock, and the
/// telemetry/health state every route reads or feeds.
#[derive(Debug, Clone)]
pub struct OcspService {
    ca: CertificateAuthority,
    responder: Responder,
    cert_id: CertId,
    clock: SimClock,
    registry: Registry,
    health: HealthLog,
    scrapes_metrics: u64,
    scrapes_health: u64,
}

impl OcspService {
    /// Build the seeded fixture: a root CA, one issued leaf, and a
    /// healthy pre-generated responder (hourly windows, so repeated
    /// requests inside a window exercise the signed-response cache).
    pub fn new(seed: u64) -> OcspService {
        OcspService::with_step(seed, 60)
    }

    /// [`OcspService::new`] with an explicit clock step in seconds.
    pub fn with_step(seed: u64, step_secs: i64) -> OcspService {
        let epoch = Time::from_unix(CAMPAIGN_EPOCH_UNIX);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ca = CertificateAuthority::new_root(&mut rng, "Live CA", "Root", "ca.test", epoch);
        let leaf = ca.issue(&mut rng, &IssueParams::new("site.example", epoch));
        let cert_id = CertId::for_certificate(&leaf, ca.certificate());
        let responder = Responder::new(BACKEND, ResponderProfile::healthy().pre_generated(3_600));
        OcspService {
            ca,
            responder,
            cert_id,
            clock: SimClock::new(epoch, step_secs),
            registry: Registry::new(),
            health: HealthLog::new(),
            scrapes_metrics: 0,
            scrapes_health: 0,
        }
    }

    /// The canonical DER request for the fixture's leaf — what the
    /// probe client POSTs and the README transcript curls.
    pub fn canonical_request(&self) -> Vec<u8> {
        OcspRequest::single(self.cert_id.clone()).to_der()
    }

    /// Dispatch one request to its route.
    pub fn handle(&mut self, request: &HttpRequest) -> HttpResponse {
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/ocsp") => self.handle_ocsp(&request.body),
            ("GET", "/metrics") => {
                self.scrapes_metrics += 1;
                HttpResponse::ok(
                    "text/plain; version=0.0.4; charset=utf-8",
                    self.render_metrics().into_bytes(),
                )
            }
            ("GET", "/health") => {
                self.scrapes_health += 1;
                HttpResponse::ok(
                    "text/plain; charset=utf-8",
                    self.health_report().render_table().into_bytes(),
                )
            }
            (_, "/ocsp") | (_, "/metrics") | (_, "/health") => {
                HttpResponse::error(405, "method not allowed")
            }
            _ => HttpResponse::error(404, "no such route"),
        }
    }

    /// `POST /ocsp`: classify, count, feed the health log, sign.
    fn handle_ocsp(&mut self, body: &[u8]) -> HttpResponse {
        let at = self.clock.tick();
        let parsed = OcspRequest::from_der(body).is_ok();
        let label = if parsed { "ok" } else { "malformed" };
        self.registry.incr(catalog::OCSPD_REQUESTS, label);
        self.health.record(BACKEND, at, parsed);
        let der = self
            .responder
            .handle_bytes_with(&self.ca, body, at, &mut self.registry);
        HttpResponse::ok("application/ocsp-response", der)
    }

    /// `/ocsp` requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.registry.counter_total(catalog::OCSPD_REQUESTS)
    }

    /// Read-only view of the request-path registry, for harnesses that
    /// want the raw counters (e.g. the bench `serve` leg's cache-hit
    /// rate) without parsing an exposition.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The current health replay.
    pub fn health_report(&self) -> HealthReport {
        self.health
            .replay(&HealthPolicy::default(), &mut opsmon::NullNotifier)
    }

    /// The current event stream (health transitions and outage
    /// open/close pairs observed on the `/ocsp` path).
    pub fn events(&self) -> EventLog {
        let mut events = EventLog::new();
        self.health.replay(&HealthPolicy::default(), &mut events);
        events
    }

    /// The operational exposition a live `GET /metrics` serves: the
    /// equality-gated render plus the gauge tail (health state, scrape
    /// counts). Renders from a clone so repeated scrapes never
    /// double-export the health counters.
    pub fn render_metrics(&self) -> String {
        let mut snapshot = self.registry.clone();
        self.health_report().export(&mut snapshot);
        snapshot.set_gauge(catalog::OCSPD_SCRAPES_METRICS, self.scrapes_metrics);
        snapshot.set_gauge(catalog::OCSPD_SCRAPES_HEALTH, self.scrapes_health);
        snapshot.to_prometheus_with_gauges()
    }

    /// The equality-gated exposition alone — what the offline replay
    /// writes and the live-smoke job compares a truncated scrape
    /// against.
    pub fn gated_metrics(&self) -> String {
        let mut snapshot = self.registry.clone();
        self.health_report().export(&mut snapshot);
        snapshot.to_prometheus()
    }

    /// Replay a request plan in-process — no TCP, same bytes.
    pub fn run_offline(&mut self, plan: &RequestPlan) {
        let canonical = self.canonical_request();
        for i in 0..plan.total {
            let body = plan.body(i, &canonical);
            self.handle(&HttpRequest::new("POST", "/ocsp", &body));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::prom::GAUGE_SECTION_MARKER;

    #[test]
    fn ocsp_route_serves_der_and_counts() {
        let mut service = OcspService::new(7);
        let request = service.canonical_request();
        let resp = service.handle(&HttpRequest::new("POST", "/ocsp", &request));
        assert_eq!(resp.status, 200);
        assert!(!resp.body.is_empty());
        assert_eq!(resp.content_type, "application/ocsp-response");
        assert_eq!(service.requests_served(), 1);
    }

    #[test]
    fn unknown_routes_and_methods_are_refused() {
        let mut service = OcspService::new(7);
        assert_eq!(
            service.handle(&HttpRequest::new("GET", "/", b"")).status,
            404
        );
        assert_eq!(
            service
                .handle(&HttpRequest::new("GET", "/ocsp", b""))
                .status,
            405
        );
        assert_eq!(
            service
                .handle(&HttpRequest::new("DELETE", "/metrics", b""))
                .status,
            405
        );
        // Refusals never tick the clock or the request counter.
        assert_eq!(service.requests_served(), 0);
    }

    #[test]
    fn live_scrape_equals_offline_replay_on_the_gated_prefix() {
        let plan = RequestPlan {
            total: 20,
            malformed_every: 7,
        };

        // "Live": requests interleaved with scrapes.
        let mut live = OcspService::new(11);
        let canonical = live.canonical_request();
        for i in 0..plan.total {
            let body = plan.body(i, &canonical);
            live.handle(&HttpRequest::new("POST", "/ocsp", &body));
            if i % 5 == 0 {
                live.handle(&HttpRequest::new("GET", "/metrics", b""));
                live.handle(&HttpRequest::new("GET", "/health", b""));
            }
        }
        let scrape = live.render_metrics();

        // Offline: the same plan, no scrapes.
        let mut offline = OcspService::new(11);
        offline.run_offline(&plan);

        let gated = scrape
            .split(&format!("{GAUGE_SECTION_MARKER}\n"))
            .next()
            .unwrap();
        assert_eq!(gated, offline.gated_metrics());
        // The tail carries the operational gauges the gated render
        // must exclude.
        assert!(scrape.contains(GAUGE_SECTION_MARKER));
        assert!(scrape.contains("health_state_healthy"));
        assert!(scrape.contains("ocspd_scrapes_metrics"));
    }

    #[test]
    fn malformed_requests_drive_health_transitions() {
        let mut service = OcspService::new(3);
        let canonical = service.canonical_request();
        // Three garbage bodies in a row: Healthy → Degraded → Failed.
        for _ in 0..3 {
            service.handle(&HttpRequest::new("POST", "/ocsp", b"junk"));
        }
        let (healthy, _, failed) = service.health_report().state_counts();
        assert_eq!((healthy, failed), (0, 1));
        // Recovery after two good requests.
        for _ in 0..2 {
            service.handle(&HttpRequest::new("POST", "/ocsp", &canonical));
        }
        let (healthy, degraded, failed) = service.health_report().state_counts();
        assert_eq!((healthy, degraded, failed), (1, 0, 0));
        let events = service.events();
        let text = events.to_jsonl();
        assert!(text.contains("healthy -> degraded"));
        assert!(text.contains("failed -> healthy"));
        assert!(text.contains("\"kind\":\"outage\""));
    }

    #[test]
    fn the_clock_is_simulated_and_scrape_free() {
        let mut service = OcspService::with_step(1, 90);
        assert_eq!(service.clock.now().unix(), CAMPAIGN_EPOCH_UNIX);
        service.handle(&HttpRequest::new("GET", "/metrics", b""));
        assert_eq!(service.clock.now().unix(), CAMPAIGN_EPOCH_UNIX);
        let body = service.canonical_request();
        service.handle(&HttpRequest::new("POST", "/ocsp", &body));
        assert_eq!(service.clock.now().unix(), CAMPAIGN_EPOCH_UNIX + 90);
    }
}
