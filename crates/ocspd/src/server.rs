//! The accept loop and its counterpart probe client, plus the
//! real-HTTP webhook sink — the only place in the workspace where the
//! operational event bus leaves the process.

use crate::http::{HttpRequest, HttpResponse};
use crate::service::OcspService;
use opsmon::EventSink;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};

/// Serve connections until `max_conns` have been handled (`None` =
/// forever). One request per connection, `Connection: close`. Returns
/// the number of connections served.
pub fn serve(
    listener: &TcpListener,
    service: &mut OcspService,
    max_conns: Option<u64>,
) -> std::io::Result<u64> {
    let mut served = 0u64;
    while max_conns.is_none_or(|n| served < n) {
        let (stream, _) = listener.accept()?;
        // A broken client connection must not take the daemon down, so
        // per-connection errors are swallowed after the response (or
        // refusal) is attempted.
        let _ = handle_connection(stream, service);
        served += 1;
    }
    Ok(served)
}

fn handle_connection(stream: TcpStream, service: &mut OcspService) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let response = match HttpRequest::read_from(&mut reader) {
        Ok(request) => service.handle(&request),
        Err(reason) => HttpResponse::error(400, &reason),
    };
    let mut writer = BufWriter::new(stream);
    response.write_to(&mut writer)
}

/// A webhook-style [`EventSink`] that POSTs each payload to a real HTTP
/// endpoint — the live tier's delivery arm. The deterministic studies
/// never construct one; they stop at [`opsmon::EventLog`].
#[derive(Debug, Clone)]
pub struct HttpWebhookSink {
    addr: String,
    path: String,
}

impl HttpWebhookSink {
    /// A sink POSTing to `http://{addr}{path}`.
    pub fn new(addr: &str, path: &str) -> HttpWebhookSink {
        HttpWebhookSink {
            addr: addr.to_owned(),
            path: path.to_owned(),
        }
    }
}

impl EventSink for HttpWebhookSink {
    fn deliver(&mut self, payload: &str) -> Result<(), String> {
        let (status, _) = client::post(
            &self.addr,
            &self.path,
            "application/json",
            payload.as_bytes(),
        )
        .map_err(|e| format!("webhook {}: {e}", self.addr))?;
        if status == 200 {
            Ok(())
        } else {
            Err(format!("webhook {}: status {status}", self.addr))
        }
    }
}

/// The probe client: plain blocking HTTP/1.1 over `TcpStream`, used by
/// the `ocspd probe` subcommand and the live-smoke CI job.
pub mod client {
    use super::*;

    /// POST `body` to `http://{addr}{path}`; returns `(status, body)`.
    pub fn post(
        addr: &str,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let stream = TcpStream::connect(addr)?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        write!(
            writer,
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )?;
        writer.write_all(body)?;
        writer.flush()?;
        read_response(stream)
    }

    /// GET `http://{addr}{path}`; returns `(status, body)`.
    pub fn get(addr: &str, path: &str) -> std::io::Result<(u16, Vec<u8>)> {
        let stream = TcpStream::connect(addr)?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        write!(
            writer,
            "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
        )?;
        writer.flush()?;
        read_response(stream)
    }

    fn read_response(stream: TcpStream) -> std::io::Result<(u16, Vec<u8>)> {
        let mut reader = BufReader::new(stream);
        let response = HttpResponse::read_from(&mut reader)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok((response.status, response.body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::RequestPlan;
    use opsmon::{Event, EventKind, Notifier, WebhookNotifier};
    use telemetry::prom::GAUGE_SECTION_MARKER;

    /// Boot a real loopback server, drive it with the probe client, and
    /// pin the live scrape's gated prefix to the offline replay — the
    /// same assertion the CI live-smoke job makes across processes.
    #[test]
    fn loopback_roundtrip_matches_offline_replay() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let plan = RequestPlan {
            total: 12,
            malformed_every: 5,
        };

        let server = std::thread::spawn(move || {
            let mut service = OcspService::new(42);
            // N requests + /metrics + /health.
            serve(&listener, &mut service, Some(plan.total + 2)).unwrap();
            (service.events().to_jsonl(), service.requests_served())
        });

        let canonical = OcspService::new(42).canonical_request();
        for i in 0..plan.total {
            let body = plan.body(i, &canonical);
            let (status, der) =
                client::post(&addr, "/ocsp", "application/ocsp-request", &body).unwrap();
            assert_eq!(status, 200);
            assert!(!der.is_empty());
        }
        let (status, scrape) = client::get(&addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        let (status, table) = client::get(&addr, "/health").unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8(table).unwrap().starts_with("subjects=1"));

        let (live_events, served) = server.join().unwrap();
        assert_eq!(served, plan.total);

        let mut offline = OcspService::new(42);
        offline.run_offline(&plan);
        let scrape = String::from_utf8(scrape).unwrap();
        let gated = scrape
            .split(&format!("{GAUGE_SECTION_MARKER}\n"))
            .next()
            .unwrap();
        assert_eq!(gated, offline.gated_metrics());
        assert_eq!(live_events, offline.events().to_jsonl());
    }

    /// The webhook sink delivers each event payload to a real HTTP
    /// endpoint and tallies outcomes.
    #[test]
    fn webhook_sink_posts_payloads_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();

        let receiver = std::thread::spawn(move || {
            let mut bodies = Vec::new();
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone()?);
                let request = HttpRequest::read_from(&mut reader)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                bodies.push(String::from_utf8(request.body).unwrap());
                let mut writer = BufWriter::new(stream);
                HttpResponse::ok("text/plain; charset=utf-8", b"ok".to_vec())
                    .write_to(&mut writer)?;
            }
            Ok::<_, std::io::Error>(bodies)
        });

        let mut notifier = WebhookNotifier::new(HttpWebhookSink::new(&addr, "/webhook"));
        let epoch = asn1::Time::from_unix(crate::service::CAMPAIGN_EPOCH_UNIX);
        notifier.notify(Event::new(
            epoch,
            EventKind::Health,
            "r",
            "healthy -> degraded",
        ));
        notifier.notify(Event::new(epoch + 60, EventKind::Outage, "r", "open"));
        assert_eq!(notifier.delivered(), 2);
        assert_eq!(notifier.failed(), 0);

        let bodies = receiver.join().unwrap().unwrap();
        assert_eq!(bodies.len(), 2);
        assert!(bodies[0].contains("\"kind\":\"health\""));
        assert!(bodies[1].contains("\"kind\":\"outage\""));
    }
}
