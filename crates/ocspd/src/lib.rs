//! The live operational tier: `ocspd`, a std-only HTTP/1.1 daemon that
//! serves the simulated OCSP responder over a real loopback socket.
//!
//! Everything below the socket is the same deterministic machinery the
//! offline studies use — [`ocsp::Responder`] signs the responses, a
//! simulated clock stamps them, [`telemetry::Registry`] counts them,
//! and [`opsmon`] tracks backend health — so a live `GET /metrics`
//! scrape is *reproducible*: replaying the identical request sequence
//! in-process (no TCP) renders the identical equality-gated exposition,
//! byte for byte. The CI `live-smoke` job pins exactly that.
//!
//! Routes:
//!
//! * `POST /ocsp` — raw DER request in, raw DER response out
//!   (`application/ocsp-response`), exactly what travels in the
//!   simulated campaigns;
//! * `GET /metrics` — [`telemetry::Registry::to_prometheus_with_gauges`]:
//!   the equality-gated exposition plus the operational gauge tail;
//! * `GET /health` — the [`opsmon::HealthReport`] table, replayed from
//!   every `/ocsp` outcome observed so far.
//!
//! The daemon is deliberately single-threaded and `Connection: close`
//! only: the workspace has no async runtime, the host pins one CPU, and
//! a deterministic accept loop is what makes the live tier testable at
//! all.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod http;
pub mod server;
pub mod service;

pub use http::{HttpRequest, HttpResponse};
pub use server::{client, serve, HttpWebhookSink};
pub use service::{OcspService, RequestPlan, SimClock, CAMPAIGN_EPOCH_UNIX};
