//! `ocspd` — the live operational tier as a binary.
//!
//! Subcommands:
//!
//! * `serve` — bind a loopback listener, print the bound address, and
//!   serve `POST /ocsp`, `GET /metrics`, `GET /health`;
//! * `probe` — drive a running daemon: POST a request plan, then scrape
//!   `/metrics` and `/health`;
//! * `offline` — replay the same request plan in-process and write the
//!   equality-gated exposition and the event stream;
//! * `request` — write the canonical DER request (for curl).
//!
//! `ocspd serve --help`-style documentation lives in the README's
//! "Running the live service" section.

#![forbid(unsafe_code)]

use mustaple_ocspd::{client, serve, HttpWebhookSink, OcspService, RequestPlan};
use opsmon::{Notifier, WebhookNotifier};
use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: ocspd <serve|probe|offline|request> [flags]");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "serve" => cmd_serve(&args[1..]),
        "probe" => cmd_probe(&args[1..]),
        "offline" => cmd_offline(&args[1..]),
        "request" => cmd_request(&args[1..]),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ocspd: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Fetch the value following `--name`, if present.
fn flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == name {
            return match iter.next() {
                Some(value) => Ok(Some(value.clone())),
                None => Err(format!("{name} needs a value")),
            };
        }
    }
    Ok(None)
}

fn parse<T: std::str::FromStr>(value: &str, name: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("{name}: cannot parse {value:?}"))
}

fn seed_of(args: &[String]) -> Result<u64, String> {
    match flag(args, "--seed")? {
        Some(v) => parse(&v, "--seed"),
        None => Ok(42),
    }
}

fn plan_of(args: &[String]) -> Result<RequestPlan, String> {
    let total = match flag(args, "--requests")? {
        Some(v) => parse(&v, "--requests")?,
        None => 20,
    };
    let malformed_every = match flag(args, "--malformed-every")? {
        Some(v) => parse(&v, "--malformed-every")?,
        None => 0,
    };
    Ok(RequestPlan {
        total,
        malformed_every,
    })
}

fn write_file(path: &str, bytes: &[u8], what: &str) -> Result<(), String> {
    std::fs::write(path, bytes).map_err(|e| format!("writing {what} to {path}: {e}"))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let seed = seed_of(args)?;
    let max_conns = match flag(args, "--max-conns")? {
        Some(v) => Some(parse::<u64>(&v, "--max-conns")?),
        None => None,
    };
    let events_path = flag(args, "--events")?;
    let webhook = flag(args, "--webhook")?;

    let listener = TcpListener::bind(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;
    // The probe side parses this line to find the ephemeral port.
    println!("listening on {bound}");
    use std::io::Write as _;
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    let mut service = OcspService::new(seed);
    serve(&listener, &mut service, max_conns).map_err(|e| format!("serving: {e}"))?;

    let events = service.events();
    if let Some(path) = events_path {
        write_file(&path, events.to_jsonl().as_bytes(), "events")?;
    }
    if let Some(addr) = webhook {
        let mut notifier = WebhookNotifier::new(HttpWebhookSink::new(&addr, "/webhook"));
        for event in events.sorted() {
            notifier.notify(event.clone());
        }
        eprintln!(
            "webhook: {} delivered, {} failed",
            notifier.delivered(),
            notifier.failed()
        );
    }
    Ok(())
}

fn cmd_probe(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr")?.ok_or("probe needs --addr host:port")?;
    let seed = seed_of(args)?;
    let plan = plan_of(args)?;
    let metrics_path = flag(args, "--metrics")?;

    let canonical = OcspService::new(seed).canonical_request();
    for i in 0..plan.total {
        let body = plan.body(i, &canonical);
        let (status, response) = client::post(&addr, "/ocsp", "application/ocsp-request", &body)
            .map_err(|e| format!("POST /ocsp: {e}"))?;
        if status != 200 || response.is_empty() {
            return Err(format!("POST /ocsp #{i}: status {status}"));
        }
    }
    let (status, scrape) =
        client::get(&addr, "/metrics").map_err(|e| format!("GET /metrics: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics: status {status}"));
    }
    match metrics_path {
        Some(path) => write_file(&path, &scrape, "the scrape")?,
        None => print!("{}", String::from_utf8_lossy(&scrape)),
    }
    let (status, table) = client::get(&addr, "/health").map_err(|e| format!("GET /health: {e}"))?;
    if status != 200 {
        return Err(format!("GET /health: status {status}"));
    }
    eprint!("{}", String::from_utf8_lossy(&table));
    Ok(())
}

fn cmd_offline(args: &[String]) -> Result<(), String> {
    let seed = seed_of(args)?;
    let plan = plan_of(args)?;
    let mut service = OcspService::new(seed);
    service.run_offline(&plan);
    match flag(args, "--metrics")? {
        Some(path) => write_file(&path, service.gated_metrics().as_bytes(), "the exposition")?,
        None => print!("{}", service.gated_metrics()),
    }
    if let Some(path) = flag(args, "--events")? {
        write_file(&path, service.events().to_jsonl().as_bytes(), "events")?;
    }
    Ok(())
}

fn cmd_request(args: &[String]) -> Result<(), String> {
    let seed = seed_of(args)?;
    let der = OcspService::new(seed).canonical_request();
    match flag(args, "--out")? {
        Some(path) => write_file(&path, &der, "the request")?,
        None => return Err("request needs --out PATH (the body is binary DER)".to_owned()),
    }
    Ok(())
}
