//! A minimal HTTP/1.1 subset: enough to parse one request and write one
//! response per connection.
//!
//! Only what the daemon's three routes need is implemented — a request
//! line, headers, an optional `Content-Length` body — and every
//! connection is `Connection: close`, so there is no keep-alive or
//! chunked-transfer machinery to get wrong.

use std::io::{BufRead, Write};

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request path, e.g. `/ocsp`.
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Build a request in memory (the offline replay path — no socket).
    pub fn new(method: &str, path: &str, body: &[u8]) -> HttpRequest {
        HttpRequest {
            method: method.to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Read one request from a buffered stream.
    pub fn read_from(stream: &mut impl BufRead) -> Result<HttpRequest, String> {
        let mut line = String::new();
        stream
            .read_line(&mut line)
            .map_err(|e| format!("request line: {e}"))?;
        let mut parts = line.split_whitespace();
        let method = parts.next().ok_or("empty request line")?.to_owned();
        let path = parts.next().ok_or("request line without path")?.to_owned();
        let version = parts.next().ok_or("request line without version")?;
        if !version.starts_with("HTTP/1.") {
            return Err(format!("unsupported version {version}"));
        }

        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            stream
                .read_line(&mut header)
                .map_err(|e| format!("header line: {e}"))?;
            let header = header.trim_end_matches(['\r', '\n']);
            if header.is_empty() {
                break;
            }
            let (name, value) = header.split_once(':').ok_or("header without colon")?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(format!("body of {content_length} bytes refused"));
                }
            }
            headers.push((name, value));
        }

        let mut body = vec![0u8; content_length];
        stream
            .read_exact(&mut body)
            .map_err(|e| format!("body: {e}"))?;
        Ok(HttpRequest {
            method,
            path,
            headers,
            body,
        })
    }
}

/// Refuse absurd bodies before allocating for them.
const MAX_BODY_BYTES: usize = 1 << 20;

/// One HTTP response, always written `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A `200 OK`.
    pub fn ok(content_type: &'static str, body: Vec<u8>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type,
            body,
        }
    }

    /// A plain-text error response.
    pub fn error(status: u16, message: &str) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{message}\n").into_bytes(),
        }
    }

    /// The canonical reason phrase for the statuses the daemon emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Internal Server Error",
        }
    }

    /// Serialize onto a stream.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        stream.write_all(&self.body)?;
        stream.flush()
    }

    /// Parse a response off a buffered stream (the probe client's half).
    pub fn read_from(stream: &mut impl BufRead) -> Result<HttpResponse, String> {
        let mut line = String::new();
        stream
            .read_line(&mut line)
            .map_err(|e| format!("status line: {e}"))?;
        let mut parts = line.split_whitespace();
        let version = parts.next().ok_or("empty status line")?;
        if !version.starts_with("HTTP/1.") {
            return Err(format!("unsupported version {version}"));
        }
        let status = parts
            .next()
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or("status line without code")?;

        let mut content_length = None;
        loop {
            let mut header = String::new();
            stream
                .read_line(&mut header)
                .map_err(|e| format!("header line: {e}"))?;
            let header = header.trim_end_matches(['\r', '\n']);
            if header.is_empty() {
                break;
            }
            let Some((name, value)) = header.split_once(':') else {
                continue;
            };
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }

        let mut body = Vec::new();
        match content_length {
            Some(n) => {
                if n > MAX_BODY_BYTES {
                    return Err(format!("body of {n} bytes refused"));
                }
                body.resize(n, 0);
                stream
                    .read_exact(&mut body)
                    .map_err(|e| format!("body: {e}"))?;
            }
            // Connection: close delimits the body.
            None => {
                stream
                    .read_to_end(&mut body)
                    .map_err(|e| format!("body: {e}"))?;
            }
        }
        Ok(HttpResponse {
            status,
            content_type: "",
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trips_through_the_parser() {
        let wire = b"POST /ocsp HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = HttpRequest::read_from(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/ocsp");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn response_serializes_and_parses() {
        let resp = HttpResponse::ok("text/plain; charset=utf-8", b"hello".to_vec());
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let parsed = HttpResponse::read_from(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body, b"hello");
    }

    #[test]
    fn oversized_bodies_are_refused() {
        let wire = b"POST /ocsp HTTP/1.1\r\nContent-Length: 9999999999\r\n\r\n";
        assert!(HttpRequest::read_from(&mut BufReader::new(&wire[..])).is_err());
    }

    #[test]
    fn garbage_request_lines_are_refused() {
        for wire in [&b"\r\n\r\n"[..], b"GET /\r\n\r\n", b"GET / SPDY/3\r\n\r\n"] {
            assert!(HttpRequest::read_from(&mut BufReader::new(wire)).is_err());
        }
    }
}
