//! Binary encodings of the handshake messages the study inspects.
//!
//! Layouts follow RFC 5246 §7.4 (handshake framing: 1-byte type + 3-byte
//! length), RFC 6066 §8 (`status_request`), and RFC 6066 §8 /
//! RFC 4366 (CertificateStatus). Parsing is strict and never panics —
//! the test suite feeds these parsers damaged input.

use pki::Certificate;

/// Handshake message type codes (RFC 5246 §7.4).
pub mod msg_type {
    /// ClientHello.
    pub const CLIENT_HELLO: u8 = 1;
    /// Certificate.
    pub const CERTIFICATE: u8 = 11;
    /// CertificateStatus (RFC 4366 §3.6).
    pub const CERTIFICATE_STATUS: u8 = 22;
}

/// TLS extension type codes.
pub mod ext_type {
    /// server_name (RFC 6066 §3).
    pub const SERVER_NAME: u16 = 0;
    /// status_request (RFC 6066 §8) — the Certificate Status Request
    /// extension the paper's Table 2 row 1 tests for.
    pub const STATUS_REQUEST: u16 = 5;
    /// status_request_v2 (RFC 6961) — multi-staple; §2.3 notes it "has
    /// yet to see wide adoption".
    pub const STATUS_REQUEST_V2: u16 = 17;
}

/// Wire-format decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input ended early.
    Truncated,
    /// A declared length disagrees with the available bytes.
    BadLength,
    /// Wrong handshake message type byte.
    WrongType {
        /// What the caller expected.
        expected: u8,
        /// What was found.
        found: u8,
    },
    /// A certificate in a Certificate message failed DER parsing.
    BadCertificate,
    /// CertificateStatus carried an unknown status_type.
    UnknownStatusType(u8),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadLength => write!(f, "inconsistent length field"),
            WireError::WrongType { expected, found } => {
                write!(
                    f,
                    "wrong handshake type: expected {expected}, found {found}"
                )
            }
            WireError::BadCertificate => write!(f, "unparseable certificate in chain"),
            WireError::UnknownStatusType(t) => write!(f, "unknown certificate status type {t}"),
        }
    }
}

impl std::error::Error for WireError {}

// --- primitives -------------------------------------------------------------

fn push_u24(out: &mut Vec<u8>, v: usize) {
    debug_assert!(v < 1 << 24);
    out.push((v >> 16) as u8);
    out.push((v >> 8) as u8);
    out.push(v as u8);
}

fn push_u16(out: &mut Vec<u8>, v: usize) {
    debug_assert!(v < 1 << 16);
    out.push((v >> 8) as u8);
    out.push(v as u8);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }
    fn u16(&mut self) -> Result<usize, WireError> {
        Ok((self.u8()? as usize) << 8 | self.u8()? as usize)
    }
    fn u24(&mut self) -> Result<usize, WireError> {
        Ok((self.u8()? as usize) << 16 | (self.u8()? as usize) << 8 | self.u8()? as usize)
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(WireError::Truncated)?;
        self.pos += n;
        Ok(slice)
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Frame a handshake body with its type byte and u24 length.
fn frame(msg_type: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 4);
    out.push(msg_type);
    push_u24(&mut out, body.len());
    out.extend_from_slice(body);
    out
}

/// Unframe, checking the type byte and exact length.
fn unframe(expected: u8, buf: &[u8]) -> Result<&[u8], WireError> {
    let mut r = Reader::new(buf);
    let found = r.u8()?;
    if found != expected {
        return Err(WireError::WrongType { expected, found });
    }
    let len = r.u24()?;
    let body = r.bytes(len)?;
    if !r.done() {
        return Err(WireError::BadLength);
    }
    Ok(body)
}

// --- ClientHello -------------------------------------------------------------

/// A (reduced) ClientHello: the fields the study inspects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// SNI host name.
    pub server_name: String,
    /// Whether the `status_request` extension is present — "Request OCSP
    /// response" in the paper's Table 2.
    pub status_request: bool,
    /// Whether the RFC 6961 `status_request_v2` extension is present.
    /// No 2018 browser sends it (§2.3).
    pub status_request_v2: bool,
}

impl ClientHello {
    /// The common 2018 hello: `status_request` only.
    pub fn new(server_name: &str, status_request: bool) -> ClientHello {
        ClientHello {
            server_name: server_name.to_string(),
            status_request,
            status_request_v2: false,
        }
    }
}

impl ClientHello {
    /// Encode to handshake bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        push_u16(&mut body, 0x0303); // TLS 1.2
        let mut exts = Vec::new();
        {
            // server_name: list of one host_name entry.
            let mut data = Vec::new();
            let mut list = Vec::new();
            list.push(0); // name_type host_name
            push_u16(&mut list, self.server_name.len());
            list.extend_from_slice(self.server_name.as_bytes());
            push_u16(&mut data, list.len());
            data.extend_from_slice(&list);
            push_u16(&mut exts, ext_type::SERVER_NAME as usize);
            push_u16(&mut exts, data.len());
            exts.extend_from_slice(&data);
        }
        if self.status_request {
            // CertificateStatusRequest: status_type=ocsp(1),
            // empty responder_id_list, empty request_extensions.
            let data = [1u8, 0, 0, 0, 0];
            push_u16(&mut exts, ext_type::STATUS_REQUEST as usize);
            push_u16(&mut exts, data.len());
            exts.extend_from_slice(&data);
        }
        if self.status_request_v2 {
            // CertificateStatusRequestListV2 with one ocsp_multi item.
            let item = [2u8, 0, 4, 0, 0, 0, 0]; // type, u16 len, empty lists
            let mut data = Vec::new();
            push_u16(&mut data, item.len());
            data.extend_from_slice(&item);
            push_u16(&mut exts, ext_type::STATUS_REQUEST_V2 as usize);
            push_u16(&mut exts, data.len());
            exts.extend_from_slice(&data);
        }
        push_u16(&mut body, exts.len());
        body.extend_from_slice(&exts);
        frame(msg_type::CLIENT_HELLO, &body)
    }

    /// Decode from handshake bytes.
    pub fn decode(buf: &[u8]) -> Result<ClientHello, WireError> {
        let body = unframe(msg_type::CLIENT_HELLO, buf)?;
        let mut r = Reader::new(body);
        let _version = r.u16()?;
        let ext_len = r.u16()?;
        let exts = r.bytes(ext_len)?;
        if !r.done() {
            return Err(WireError::BadLength);
        }
        let mut server_name = String::new();
        let mut status_request = false;
        let mut status_request_v2 = false;
        let mut er = Reader::new(exts);
        while !er.done() {
            let etype = er.u16()? as u16;
            let elen = er.u16()?;
            let data = er.bytes(elen)?;
            match etype {
                ext_type::SERVER_NAME => {
                    let mut nr = Reader::new(data);
                    let list_len = nr.u16()?;
                    let list = nr.bytes(list_len)?;
                    let mut lr = Reader::new(list);
                    let name_type = lr.u8()?;
                    let name_len = lr.u16()?;
                    let name = lr.bytes(name_len)?;
                    if name_type == 0 {
                        server_name = String::from_utf8_lossy(name).into_owned();
                    }
                }
                ext_type::STATUS_REQUEST => {
                    let mut sr = Reader::new(data);
                    if sr.u8()? == 1 {
                        status_request = true;
                    }
                }
                ext_type::STATUS_REQUEST_V2 => {
                    status_request_v2 = true;
                }
                _ => {}
            }
        }
        Ok(ClientHello {
            server_name,
            status_request,
            status_request_v2,
        })
    }
}

// --- Certificate --------------------------------------------------------------

/// The Certificate handshake message: the server's chain, leaf first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateMsg {
    /// The chain, leaf first.
    pub chain: Vec<Certificate>,
}

impl CertificateMsg {
    /// Encode to handshake bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut list = Vec::new();
        for cert in &self.chain {
            let der = cert.to_der();
            push_u24(&mut list, der.len());
            list.extend_from_slice(&der);
        }
        let mut body = Vec::new();
        push_u24(&mut body, list.len());
        body.extend_from_slice(&list);
        frame(msg_type::CERTIFICATE, &body)
    }

    /// Decode from handshake bytes.
    pub fn decode(buf: &[u8]) -> Result<CertificateMsg, WireError> {
        let body = unframe(msg_type::CERTIFICATE, buf)?;
        let mut r = Reader::new(body);
        let list_len = r.u24()?;
        let list = r.bytes(list_len)?;
        if !r.done() {
            return Err(WireError::BadLength);
        }
        let mut lr = Reader::new(list);
        let mut chain = Vec::new();
        while !lr.done() {
            let len = lr.u24()?;
            let der = lr.bytes(len)?;
            chain.push(Certificate::from_der(der).map_err(|_| WireError::BadCertificate)?);
        }
        Ok(CertificateMsg { chain })
    }
}

// --- CertificateStatus ---------------------------------------------------------

/// The CertificateStatus message: the stapled OCSP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateStatusMsg {
    /// Raw OCSP response DER (opaque at this layer; the client's OCSP
    /// validator interprets it).
    pub ocsp_response: Vec<u8>,
}

impl CertificateStatusMsg {
    /// Encode to handshake bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.push(1); // CertificateStatusType ocsp
        push_u24(&mut body, self.ocsp_response.len());
        body.extend_from_slice(&self.ocsp_response);
        frame(msg_type::CERTIFICATE_STATUS, &body)
    }

    /// Decode from handshake bytes.
    pub fn decode(buf: &[u8]) -> Result<CertificateStatusMsg, WireError> {
        let body = unframe(msg_type::CERTIFICATE_STATUS, buf)?;
        let mut r = Reader::new(body);
        let status_type = r.u8()?;
        if status_type != 1 {
            return Err(WireError::UnknownStatusType(status_type));
        }
        let len = r.u24()?;
        let ocsp = r.bytes(len)?;
        if !r.done() {
            return Err(WireError::BadLength);
        }
        Ok(CertificateStatusMsg {
            ocsp_response: ocsp.to_vec(),
        })
    }
}

// --- CertificateStatus v2 (RFC 6961 multi-staple) ----------------------------

/// The RFC 6961 `ocsp_multi` CertificateStatus: one optional OCSP
/// response per chain element, leaf first. §2.3 of the paper: "There is
/// an extension to OCSP Stapling that tries to address this limitation
/// by allowing the server to include multiple certificate statuses in a
/// single response, but it has yet to see wide adoption."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateStatusV2Msg {
    /// Per-chain-position responses; `None` encodes as a zero-length
    /// entry (RFC 6961 §5.2 allows empty responses for positions the
    /// server has nothing for).
    pub responses: Vec<Option<Vec<u8>>>,
}

impl CertificateStatusV2Msg {
    /// Encode to handshake bytes (status_type = 2, `ocsp_multi`).
    pub fn encode(&self) -> Vec<u8> {
        let mut list = Vec::new();
        for response in &self.responses {
            match response {
                Some(bytes) => {
                    push_u24(&mut list, bytes.len());
                    list.extend_from_slice(bytes);
                }
                None => push_u24(&mut list, 0),
            }
        }
        let mut body = Vec::new();
        body.push(2); // CertificateStatusType ocsp_multi
        push_u24(&mut body, list.len());
        body.extend_from_slice(&list);
        frame(msg_type::CERTIFICATE_STATUS, &body)
    }

    /// Decode from handshake bytes.
    pub fn decode(buf: &[u8]) -> Result<CertificateStatusV2Msg, WireError> {
        let body = unframe(msg_type::CERTIFICATE_STATUS, buf)?;
        let mut r = Reader::new(body);
        let status_type = r.u8()?;
        if status_type != 2 {
            return Err(WireError::UnknownStatusType(status_type));
        }
        let list_len = r.u24()?;
        let list = r.bytes(list_len)?;
        if !r.done() {
            return Err(WireError::BadLength);
        }
        let mut lr = Reader::new(list);
        let mut responses = Vec::new();
        while !lr.done() {
            let len = lr.u24()?;
            if len == 0 {
                responses.push(None);
            } else {
                responses.push(Some(lr.bytes(len)?.to_vec()));
            }
        }
        Ok(CertificateStatusV2Msg { responses })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asn1::Time;
    use pki::{CertificateAuthority, IssueParams};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn client_hello_round_trip() {
        for status_request in [true, false] {
            let hello = ClientHello::new("site.example", status_request);
            let bytes = hello.encode();
            let back = ClientHello::decode(&bytes).unwrap();
            assert_eq!(back, hello);
        }
    }

    #[test]
    fn status_request_bytes_visible_on_wire() {
        let with = ClientHello::new("a.test", true).encode();
        let without = ClientHello::new("a.test", false).encode();
        // Extension type 5 appears as 0x00 0x05 followed by length 0x00 0x05.
        assert!(with.windows(4).any(|w| w == [0x00, 0x05, 0x00, 0x05]));
        assert!(!without.windows(4).any(|w| w == [0x00, 0x05, 0x00, 0x05]));
    }

    #[test]
    fn certificate_msg_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let now = Time::from_civil(2018, 5, 1, 0, 0, 0);
        let mut ca = CertificateAuthority::new_root(&mut rng, "CA", "Root", "ca.test", now);
        let leaf = ca.issue(&mut rng, &IssueParams::new("x.example", now));
        let msg = CertificateMsg {
            chain: vec![leaf, ca.certificate().clone()],
        };
        let back = CertificateMsg::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn certificate_status_round_trip() {
        let msg = CertificateStatusMsg {
            ocsp_response: vec![0x30, 0x03, 0x0a, 0x01, 0x00],
        };
        let back = CertificateStatusMsg::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn wrong_type_detected() {
        let hello = ClientHello::new("x", true).encode();
        assert_eq!(
            CertificateMsg::decode(&hello),
            Err(WireError::WrongType {
                expected: 11,
                found: 1
            })
        );
    }

    #[test]
    fn truncation_detected() {
        let hello = ClientHello::new("host.example", true).encode();
        for cut in 1..hello.len() {
            assert!(ClientHello::decode(&hello[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = ClientHello::new("x", false).encode();
        bytes.push(0xff);
        assert!(ClientHello::decode(&bytes).is_err());
    }

    #[test]
    fn certificate_status_v2_round_trip() {
        let msg = CertificateStatusV2Msg {
            responses: vec![Some(vec![0x30, 0x01, 0x00]), None, Some(vec![9, 9])],
        };
        let back = CertificateStatusV2Msg::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
        // v1 and v2 reject each other's status_type.
        assert!(CertificateStatusMsg::decode(&msg.encode()).is_err());
        let v1 = CertificateStatusMsg {
            ocsp_response: vec![1],
        }
        .encode();
        assert!(CertificateStatusV2Msg::decode(&v1).is_err());
    }

    #[test]
    fn certificate_status_v2_empty_list() {
        let msg = CertificateStatusV2Msg { responses: vec![] };
        assert_eq!(CertificateStatusV2Msg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn unknown_status_type_rejected() {
        let mut bytes = CertificateStatusMsg {
            ocsp_response: vec![1, 2, 3],
        }
        .encode();
        // Flip the status_type byte (first body byte, offset 4).
        bytes[4] = 9;
        assert_eq!(
            CertificateStatusMsg::decode(&bytes),
            Err(WireError::UnknownStatusType(9))
        );
    }

    #[test]
    fn unknown_extensions_are_skipped() {
        // Hand-build a hello with an unknown extension before server_name.
        let inner = ClientHello::new("z.example", true);
        let mut reference = inner.encode();
        // Splice a bogus extension (type 0x7777, 2 bytes) into the list.
        // Easier: decode must tolerate it when we rebuild manually.
        let mut body = Vec::new();
        push_u16(&mut body, 0x0303);
        let mut exts = Vec::new();
        push_u16(&mut exts, 0x7777);
        push_u16(&mut exts, 2);
        exts.extend_from_slice(&[0xde, 0xad]);
        // status_request
        push_u16(&mut exts, ext_type::STATUS_REQUEST as usize);
        push_u16(&mut exts, 5);
        exts.extend_from_slice(&[1, 0, 0, 0, 0]);
        push_u16(&mut body, exts.len());
        body.extend_from_slice(&exts);
        let framed = frame(msg_type::CLIENT_HELLO, &body);
        let parsed = ClientHello::decode(&framed).unwrap();
        assert!(parsed.status_request);
        assert_eq!(parsed.server_name, ""); // no SNI in this build
        reference.clear(); // silence unused warning path
        let _ = reference;
    }
}
