//! Simulated TLS handshake messages for the Must-Staple study.
//!
//! The study observes three things at the handshake layer (§6's
//! methodology captures client traffic to see exactly these):
//!
//! 1. does the client offer the **Certificate Status Request** extension
//!    (RFC 6066 `status_request`, extension type 5) in its ClientHello?
//! 2. does the server include a **CertificateStatus** message carrying a
//!    stapled OCSP response?
//! 3. what does the client do when a Must-Staple certificate arrives
//!    without a staple?
//!
//! [`wire`] implements real binary encodings of the three messages
//! involved (ClientHello with extensions, Certificate, CertificateStatus)
//! in the RFC 5246/6066 layout, so the measurement code inspects actual
//! bytes rather than boolean flags. [`handshake`] runs the
//! server-flight/client-verdict exchange and produces a
//! [`handshake::Transcript`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod handshake;
pub mod wire;

pub use handshake::{ServerFlight, Transcript};
pub use wire::{CertificateMsg, CertificateStatusMsg, ClientHello, WireError};
