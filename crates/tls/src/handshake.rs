//! The handshake exchange and its transcript.
//!
//! The simulation keeps the handshake synchronous: the client sends a
//! [`crate::wire::ClientHello`]; the server answers with a
//! [`ServerFlight`] (certificate chain + optional stapled
//! CertificateStatus + how long it stalled before answering); the client
//! then renders a verdict (in the `browser` crate). The [`Transcript`]
//! records the on-the-wire artifacts the paper's packet captures looked
//! for.

use crate::wire::{
    CertificateMsg, CertificateStatusMsg, CertificateStatusV2Msg, ClientHello, WireError,
};
use pki::Certificate;

/// What the server sends after the ClientHello.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerFlight {
    /// The certificate chain, leaf first.
    pub chain: Vec<Certificate>,
    /// Stapled OCSP response bytes, if the server staples. Only sent
    /// when the client offered `status_request` (RFC 6066 requires the
    /// client to solicit it).
    pub stapled_ocsp: Option<Vec<u8>>,
    /// Extra delay the server imposed before completing the handshake,
    /// in milliseconds. Apache's pause-and-fetch behavior (§7.2) shows
    /// up here.
    pub stall_ms: f64,
    /// RFC 6961 multi-staple responses (one optional entry per chain
    /// element), for servers that support `status_request_v2`. Almost
    /// nobody does (§2.3); `None` = v2 unsupported.
    pub stapled_ocsp_multi: Option<Vec<Option<Vec<u8>>>>,
}

impl ServerFlight {
    /// The common single-staple flight.
    pub fn new(chain: Vec<Certificate>, stapled_ocsp: Option<Vec<u8>>, stall_ms: f64) -> Self {
        ServerFlight {
            chain,
            stapled_ocsp,
            stall_ms,
            stapled_ocsp_multi: None,
        }
    }

    /// Attach RFC 6961 multi-staple responses.
    pub fn with_multi_staple(mut self, responses: Vec<Option<Vec<u8>>>) -> Self {
        self.stapled_ocsp_multi = Some(responses);
        self
    }
}

/// The observable record of one handshake — what a packet capture shows.
#[derive(Debug, Clone, PartialEq)]
pub struct Transcript {
    /// Raw ClientHello bytes.
    pub client_hello: Vec<u8>,
    /// Raw Certificate message bytes.
    pub certificate_msg: Vec<u8>,
    /// Raw CertificateStatus bytes, when the server stapled.
    pub certificate_status_msg: Option<Vec<u8>>,
    /// Raw RFC 6961 CertificateStatus (ocsp_multi) bytes, when the
    /// client offered `status_request_v2` and the server supports it.
    pub certificate_status_v2_msg: Option<Vec<u8>>,
    /// Total handshake stall beyond network RTTs, ms.
    pub stall_ms: f64,
}

impl Transcript {
    /// Assemble the transcript for a hello/flight exchange, producing the
    /// exact bytes each side would emit.
    pub fn record(hello: &ClientHello, flight: &ServerFlight) -> Transcript {
        let certificate_msg = CertificateMsg {
            chain: flight.chain.clone(),
        }
        .encode();
        // Servers must not staple to clients that did not ask (RFC 6066);
        // honoring that here means misbehaving-server experiments encode
        // the rule violation explicitly rather than by accident.
        let certificate_status_msg = if hello.status_request {
            flight.stapled_ocsp.as_ref().map(|ocsp| {
                CertificateStatusMsg {
                    ocsp_response: ocsp.clone(),
                }
                .encode()
            })
        } else {
            None
        };
        let certificate_status_v2_msg = if hello.status_request_v2 {
            flight.stapled_ocsp_multi.as_ref().map(|responses| {
                CertificateStatusV2Msg {
                    responses: responses.clone(),
                }
                .encode()
            })
        } else {
            None
        };
        Transcript {
            client_hello: hello.encode(),
            certificate_msg,
            certificate_status_msg,
            certificate_status_v2_msg,
            stall_ms: flight.stall_ms,
        }
    }

    /// Did the client solicit a staple? (Table 2, row "Request OCSP
    /// response".)
    pub fn client_solicited_staple(&self) -> Result<bool, WireError> {
        Ok(ClientHello::decode(&self.client_hello)?.status_request)
    }

    /// The server's chain, re-parsed from the wire.
    pub fn server_chain(&self) -> Result<Vec<Certificate>, WireError> {
        Ok(CertificateMsg::decode(&self.certificate_msg)?.chain)
    }

    /// The stapled OCSP response bytes, re-parsed from the wire.
    pub fn stapled_ocsp(&self) -> Result<Option<Vec<u8>>, WireError> {
        match &self.certificate_status_msg {
            None => Ok(None),
            Some(bytes) => Ok(Some(CertificateStatusMsg::decode(bytes)?.ocsp_response)),
        }
    }

    /// The RFC 6961 multi-staple responses, re-parsed from the wire.
    pub fn stapled_ocsp_multi(&self) -> Result<Option<Vec<Option<Vec<u8>>>>, WireError> {
        match &self.certificate_status_v2_msg {
            None => Ok(None),
            Some(bytes) => Ok(Some(CertificateStatusV2Msg::decode(bytes)?.responses)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asn1::Time;
    use pki::{CertificateAuthority, IssueParams};
    use rand::{rngs::StdRng, SeedableRng};

    fn chain() -> Vec<Certificate> {
        let mut rng = StdRng::seed_from_u64(10);
        let now = Time::from_civil(2018, 5, 1, 0, 0, 0);
        let mut ca = CertificateAuthority::new_root(&mut rng, "CA", "Root", "ca.test", now);
        let leaf = ca.issue(&mut rng, &IssueParams::new("hs.example", now));
        vec![leaf, ca.certificate().clone()]
    }

    #[test]
    fn stapled_exchange_round_trips() {
        let hello = ClientHello::new("hs.example", true);
        let flight = ServerFlight::new(chain(), Some(vec![0x30, 0x03, 0x0a, 0x01, 0x00]), 0.0);
        let t = Transcript::record(&hello, &flight);
        assert!(t.client_solicited_staple().unwrap());
        assert_eq!(t.server_chain().unwrap().len(), 2);
        assert_eq!(
            t.stapled_ocsp().unwrap().unwrap(),
            vec![0x30, 0x03, 0x0a, 0x01, 0x00]
        );
    }

    #[test]
    fn staple_suppressed_when_not_solicited() {
        let hello = ClientHello::new("hs.example", false);
        let flight = ServerFlight::new(chain(), Some(vec![1, 2, 3]), 0.0);
        let t = Transcript::record(&hello, &flight);
        assert!(!t.client_solicited_staple().unwrap());
        assert_eq!(t.stapled_ocsp().unwrap(), None);
    }

    #[test]
    fn absent_staple_recorded_as_none() {
        let hello = ClientHello::new("hs.example", true);
        let flight = ServerFlight::new(chain(), None, 120.0);
        let t = Transcript::record(&hello, &flight);
        assert_eq!(t.stapled_ocsp().unwrap(), None);
        assert_eq!(t.stall_ms, 120.0);
    }
}
