#![deny(missing_docs)] // detlint::allow(forbid-unsafe): a GlobalAlloc impl is necessarily unsafe

//! A counting global allocator for peak-memory instrumentation.
//!
//! Std-only: wraps [`std::alloc::System`], tracking live bytes, the
//! high-watermark ([`MemStats::peak_bytes`]), and the allocation count
//! in relaxed atomics. The binary that wants numbers installs it —
//! behind `bench`'s `mem-profile` feature:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: memprof::CountingAlloc = memprof::CountingAlloc;
//! ```
//!
//! The numbers feed telemetry *gauges* (`mem.peak_bytes`,
//! `mem.alloc_count`), which are excluded from every artifact-equality
//! surface — instrumented and uninstrumented runs stay byte-identical
//! (DESIGN.md §13). When the allocator is not installed the counters
//! simply stay zero, which consumers render as an honest `n/a`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Bytes currently allocated.
    pub current_bytes: u64,
    /// High watermark of allocated bytes since start (or the last
    /// [`reset_peak`]).
    pub peak_bytes: u64,
    /// Number of allocations (including reallocations) since start.
    pub alloc_count: u64,
}

/// Read the counters. All zeros when [`CountingAlloc`] is not the
/// process's global allocator.
pub fn stats() -> MemStats {
    MemStats {
        current_bytes: CURRENT.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
        alloc_count: ALLOCS.load(Ordering::Relaxed),
    }
}

/// Reset the high watermark to the current live size (for per-phase
/// measurements, e.g. one `bench_scan` leg at a time). The allocation
/// count is left running — it is a monotone event counter, not a
/// level.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn on_alloc(size: u64) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

fn on_dealloc(size: u64) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

/// The counting allocator: [`System`] plus three relaxed atomics per
/// call. Install with `#[global_allocator]`.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Account as free-old + alloc-new so CURRENT stays exact.
            on_dealloc(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is NOT installed for lib tests, so the counters
    // only move when driven directly.

    #[test]
    fn counters_track_alloc_and_dealloc() {
        let before = stats();
        on_alloc(1_000);
        let mid = stats();
        assert_eq!(mid.current_bytes, before.current_bytes + 1_000);
        assert_eq!(mid.alloc_count, before.alloc_count + 1);
        assert!(mid.peak_bytes >= mid.current_bytes);
        on_dealloc(1_000);
        let after = stats();
        assert_eq!(after.current_bytes, before.current_bytes);
        // Peak is a high watermark: dropping back does not lower it.
        assert!(after.peak_bytes >= mid.current_bytes);
    }

    #[test]
    fn reset_peak_drops_to_current() {
        on_alloc(10_000);
        on_dealloc(10_000);
        reset_peak();
        let s = stats();
        assert_eq!(s.peak_bytes, s.current_bytes);
    }
}
