//! Property tests for the ensemble statistics (`analysis::stats`).
//!
//! The load-bearing property: for a fixed underlying dispersion, the
//! 95 % confidence interval *shrinks* as the number of seeds grows —
//! that is the whole point of running an ensemble instead of a single
//! draw. Alternating samples `center ± spread` keep the sample standard
//! deviation essentially constant while `n` varies, isolating the
//! `t(n−1)/√n` factor the property is really about.

use mustaple_analysis::stats::{fold_tables, Summary};
use mustaple_analysis::Table;
use proptest::prelude::*;

/// `n` alternating samples `center − spread, center + spread, …` with
/// `n` even, so mean and stddev are exact regardless of `n`.
fn alternating(center: f64, spread: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                center - spread
            } else {
                center + spread
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn ci_width_shrinks_as_n_grows(
        center in -1_000.0f64..1_000.0,
        spread in 0.001f64..1_000.0,
        k in 1usize..5,
    ) {
        // Even sample counts 2k, 4k, 8k, 16k: same population spread,
        // strictly more seeds each step.
        let widths: Vec<f64> = [2, 4, 8, 16]
            .iter()
            .map(|&factor| {
                let samples = alternating(center, spread, factor * k);
                Summary::from_samples(&samples).unwrap().ci_width()
            })
            .collect();
        for pair in widths.windows(2) {
            prop_assert!(
                pair[1] < pair[0],
                "CI failed to shrink: widths {widths:?} (center {center}, spread {spread}, k {k})"
            );
        }
        // And every interval actually contains the mean.
        let s = Summary::from_samples(&alternating(center, spread, 2 * k)).unwrap();
        prop_assert!(s.ci_lo <= s.mean && s.mean <= s.ci_hi);
    }

    #[test]
    fn summary_is_bounded_by_its_envelope(
        samples in proptest::collection::vec(-1e6f64..1e6, 1..24),
    ) {
        let s = Summary::from_samples(&samples).unwrap();
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.ci_lo <= s.mean && s.mean <= s.ci_hi);
        prop_assert!(s.stddev >= 0.0);
        prop_assert_eq!(s.n, samples.len());
    }

    #[test]
    fn folding_is_invariant_to_rerendering(
        values in proptest::collection::vec((0u32..1000, 0u32..1000), 1..12),
    ) {
        // Folding the same per-seed tables twice is byte-identical —
        // the determinism contract ensemble companions inherit.
        let mut a = Table::new(&["key", "v"]);
        let mut b = Table::new(&["key", "v"]);
        for (i, &(va, vb)) in values.iter().enumerate() {
            a.row(&[format!("k{i}"), format!("{va}")]);
            b.row(&[format!("k{i}"), format!("{vb}")]);
        }
        let once = fold_tables(&[a.clone(), b.clone()]).unwrap().to_csv();
        let again = fold_tables(&[a, b]).unwrap().to_csv();
        prop_assert_eq!(once, again);
    }
}
