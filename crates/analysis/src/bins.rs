//! Alexa-rank binning for the adoption curves.
//!
//! Figures 2 and 11 plot adoption percentages "as a function of website
//! popularity" in bins of 10 000 ranks. [`RankBins`] accumulates
//! per-rank booleans and emits per-bin percentages.

/// Rank-binned percentage accumulator.
#[derive(Debug, Clone)]
pub struct RankBins {
    bin_width: usize,
    bins: Vec<(u64, u64)>, // (hits, totals)
}

impl RankBins {
    /// Bins of `bin_width` ranks (the paper uses 10 000).
    ///
    /// # Panics
    ///
    /// Panics if `bin_width == 0`.
    pub fn new(bin_width: usize) -> RankBins {
        assert!(bin_width > 0, "bin width must be positive");
        RankBins {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// Record whether the site at `rank` (1-based) has the property.
    pub fn record(&mut self, rank: usize, hit: bool) {
        let idx = rank.saturating_sub(1) / self.bin_width;
        if self.bins.len() <= idx {
            self.bins.resize(idx + 1, (0, 0));
        }
        let (hits, total) = &mut self.bins[idx];
        *total += 1;
        if hit {
            *hits += 1;
        }
    }

    /// Per-bin `(bin_start_rank, percentage)`.
    pub fn percentages(&self) -> Vec<(usize, f64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &(hits, total))| {
                (
                    i * self.bin_width,
                    100.0 * hits as f64 / total.max(1) as f64,
                )
            })
            .collect()
    }

    /// Overall percentage across all ranks.
    pub fn overall_percentage(&self) -> f64 {
        let (hits, total) = self
            .bins
            .iter()
            .fold((0u64, 0u64), |(h, t), &(bh, bt)| (h + bh, t + bt));
        if total == 0 {
            0.0
        } else {
            100.0 * hits as f64 / total as f64
        }
    }

    /// A simple popularity-trend statistic: percentage in the first bin
    /// minus percentage in the last bin (positive = popular sites adopt
    /// more, the paper's qualitative claim for both figures).
    pub fn popularity_gradient(&self) -> f64 {
        let p = self.percentages();
        match (p.first(), p.last()) {
            (Some(first), Some(last)) if p.len() > 1 => first.1 - last.1,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_split_on_width() {
        let mut rb = RankBins::new(10);
        for rank in 1..=10 {
            rb.record(rank, true);
        }
        for rank in 11..=20 {
            rb.record(rank, rank % 2 == 0);
        }
        let p = rb.percentages();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], (0, 100.0));
        assert_eq!(p[1], (10, 50.0));
        assert_eq!(rb.overall_percentage(), 75.0);
    }

    #[test]
    fn gradient_positive_when_top_sites_lead() {
        let mut rb = RankBins::new(10);
        for rank in 1..=10 {
            rb.record(rank, true);
        }
        for rank in 11..=20 {
            rb.record(rank, false);
        }
        assert_eq!(rb.popularity_gradient(), 100.0);
    }

    #[test]
    fn rank_one_is_first_bin() {
        let mut rb = RankBins::new(10_000);
        rb.record(1, true);
        rb.record(10_000, true);
        rb.record(10_001, false);
        let p = rb.percentages();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].1, 100.0);
    }

    #[test]
    fn empty_is_safe() {
        let rb = RankBins::new(10);
        assert_eq!(rb.overall_percentage(), 0.0);
        assert_eq!(rb.popularity_gradient(), 0.0);
        assert!(rb.percentages().is_empty());
    }
}
