//! Analysis toolkit for the measurement pipelines.
//!
//! Small, dependency-free statistics utilities shaped around what the
//! paper's figures need:
//!
//! * [`cdf`] — cumulative distributions, including samples at +∞
//!   (Figure 8 plots blank `nextUpdate` validity periods as infinite);
//! * [`timeseries`] — time-binned aggregation for the availability
//!   plots (Figures 3–5, 12);
//! * [`bins`] — Alexa-rank binning (bins of 10 000) for the adoption
//!   curves (Figures 2 and 11);
//! * [`table`] — plain-text and CSV rendering used by the `figures`
//!   binary so every table/figure has a machine-readable artifact;
//! * [`stats`] — multi-seed ensemble statistics: mean / sample stddev /
//!   Student-t 95 % confidence intervals per CSV cell, and the
//!   `*.ens.csv` companion-table folding (DESIGN.md §11);
//! * [`stream`] — incremental accumulators for bounded-memory ×N scale:
//!   an exact count-map [`StreamingCdf`] mirroring [`Cdf`] byte for
//!   byte, and the folded Figure 2/11 rank-adoption summary
//!   (DESIGN.md §13).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bins;
pub mod cdf;
pub mod stats;
pub mod stream;
pub mod table;
pub mod timeseries;

pub use bins::RankBins;
pub use cdf::Cdf;
pub use stats::{Summary, Welford};
pub use stream::{AlexaAdoption, StreamingCdf};
pub use table::Table;
pub use timeseries::TimeSeries;
