//! Incremental (streaming) accumulators for bounded-memory analysis.
//!
//! The batch pipeline materializes a `Vec<f64>` per figure and sorts it
//! at query time ([`crate::Cdf`]). At ×100 scale those vectors are the
//! memory wall, so this module provides one-pass accumulators the scan
//! pipelines can feed per chunk and merge in canonical shard order:
//!
//! * [`StreamingCdf`] — an exact distribution accumulator: a count map
//!   over distinct sample values. Memory is `O(distinct values)` rather
//!   than `O(samples)`, and every query (`quantile`, `median`, `min`,
//!   `max`, `curve`, `fraction_at_most`) reproduces [`crate::Cdf`]'s
//!   answers *byte for byte*, including the infinite-mass contract
//!   (quantiles inside the +∞ mass are `None`).
//! * [`AlexaAdoption`] — the folded Figure 2 / Figure 11 rank-adoption
//!   summary: three [`RankBins`] recorded per site, so the Alexa list
//!   never has to be materialized.
//!
//! [`crate::TimeSeries`] is already an accumulator (binned counts with
//! an order-insensitive `merge`), and one-pass mean/stddev live in
//! [`crate::stats::Welford`]; together with this module they replace
//! every retained-vector analysis path (DESIGN.md §13).

use crate::bins::RankBins;
use crate::cdf::Cdf;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A finite, non-NaN `f64` ordered by `total_cmp` — the `BTreeMap` key
/// of [`StreamingCdf`]. Construction normalizes `-0.0` to `+0.0` so the
/// key equality matches [`Cdf`]'s `==` semantics (which treat the two
/// zeros as one sample value).
#[derive(Debug, Clone, Copy)]
struct SampleKey(f64);

impl SampleKey {
    fn new(sample: f64) -> SampleKey {
        // -0.0 == 0.0 under f64 equality but not under total_cmp; fold
        // the two onto the +0.0 key so Ord and sample identity agree.
        SampleKey(if sample == 0.0 { 0.0 } else { sample })
    }
}

impl PartialEq for SampleKey {
    fn eq(&self, other: &SampleKey) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for SampleKey {}

impl PartialOrd for SampleKey {
    fn partial_cmp(&self, other: &SampleKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SampleKey {
    fn cmp(&self, other: &SampleKey) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// An exact streaming CDF: distinct sample values with multiplicities.
///
/// Mirrors [`Cdf`]'s full query surface and contract (see
/// [`crate::cdf`]'s infinite-mass documentation), but is mergeable and
/// bounded by the number of *distinct* values instead of the number of
/// samples — the §5.4 time-difference distribution, for example, is
/// millions of samples over a handful of distinct values.
///
/// Equality is derived over the count map, so summaries carrying a
/// `StreamingCdf` keep their `Eq` (the map never holds NaN — `add`
/// panics first — so `Eq` is sound).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamingCdf {
    counts: BTreeMap<SampleKey, u64>,
    finite: u64,
    infinite: u64,
}

impl StreamingCdf {
    /// An empty accumulator.
    pub fn new() -> StreamingCdf {
        StreamingCdf::default()
    }

    /// Build from finite samples (the batch construction, for tests and
    /// parity checks).
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> StreamingCdf {
        let mut cdf = StreamingCdf::new();
        for s in samples {
            cdf.add(s);
        }
        cdf
    }

    /// Add one sample. Same contract as [`Cdf::add`]: `+∞` is routed to
    /// [`StreamingCdf::add_infinite`]; NaN and `−∞` panic in every
    /// build profile.
    pub fn add(&mut self, sample: f64) {
        if sample == f64::INFINITY {
            self.add_infinite();
            return;
        }
        assert!(
            sample.is_finite(),
            "StreamingCdf::add: non-finite sample {sample} \
             (only +inf is representable, via add_infinite)"
        );
        *self.counts.entry(SampleKey::new(sample)).or_insert(0) += 1;
        self.finite += 1;
    }

    /// Add a +∞ sample.
    pub fn add_infinite(&mut self) {
        self.infinite += 1;
    }

    /// Fold another accumulator in. Count sums are order-insensitive,
    /// so any merge order yields the same accumulator — the property
    /// the executor's canonical shard merge relies on.
    pub fn merge(&mut self, other: &StreamingCdf) {
        for (&key, &n) in &other.counts {
            *self.counts.entry(key).or_insert(0) += n;
        }
        self.finite += other.finite;
        self.infinite += other.infinite;
    }

    /// Total sample count (finite + infinite).
    pub fn len(&self) -> usize {
        (self.finite + self.infinite) as usize
    }

    /// Whether no samples were added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of infinite samples.
    pub fn infinite_count(&self) -> usize {
        self.infinite as usize
    }

    /// Number of distinct finite values retained — the memory bound.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Distinct finite values with multiplicities, ascending.
    pub fn counts(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts.iter().map(|(&k, &n)| (k.0, n))
    }

    /// Fraction of samples ≤ `x` (infinite samples are never ≤ any
    /// finite `x`). Matches [`Cdf::fraction_at_most`].
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let below: u64 = self
            .counts
            .iter()
            .take_while(|(k, _)| k.0 <= x)
            .map(|(_, &n)| n)
            .sum();
        below as f64 / self.len() as f64
    }

    /// The `q`-quantile over finite samples; `None` when the quantile
    /// falls into the infinite mass or there are no samples. The rank
    /// rule is exactly [`Cdf::quantile`]'s: `⌈q·n⌉ − 1` over all `n`
    /// samples (infinite included).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let idx = if q <= 0.0 {
            0
        } else {
            (q * self.len() as f64).ceil() as u64 - 1
        };
        if idx >= self.finite {
            return None;
        }
        let mut seen = 0u64;
        for (key, &n) in &self.counts {
            seen += n;
            if idx < seen {
                return Some(key.0);
            }
        }
        None
    }

    /// Median, if finite.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The finite maximum.
    pub fn max(&self) -> Option<f64> {
        self.counts.keys().next_back().map(|k| k.0)
    }

    /// The finite minimum.
    pub fn min(&self) -> Option<f64> {
        self.counts.keys().next().map(|k| k.0)
    }

    /// The full curve as `(x, F(x))` points, one per distinct value —
    /// identical to [`Cdf::curve`] on the same samples.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.len() as f64;
        let mut points = Vec::with_capacity(self.counts.len());
        let mut cumulative = 0u64;
        for (key, &count) in &self.counts {
            cumulative += count;
            points.push((key.0, cumulative as f64 / n));
        }
        points
    }

    /// Expand into a batch [`Cdf`] (already sorted, so downstream
    /// `ensure_sorted` is a no-op and the figure bytes match a
    /// vector-built CDF exactly).
    pub fn to_cdf(&self) -> Cdf {
        let mut cdf = Cdf::from_samples(
            self.counts
                .iter()
                .flat_map(|(key, &n)| std::iter::repeat_n(key.0, n as usize)),
        );
        for _ in 0..self.infinite {
            cdf.add_infinite();
        }
        cdf
    }
}

/// The folded Figure 2 / Figure 11 summary: rank-binned HTTPS, OCSP-
/// among-HTTPS, and stapling-among-OCSP adoption, recorded one site at
/// a time so the Alexa list never needs to exist in memory.
///
/// The record rules are exactly the figures' batch folds: every site
/// feeds the HTTPS bins; only HTTPS sites feed the OCSP bins; only OCSP
/// sites feed the stapling bins.
#[derive(Debug, Clone)]
pub struct AlexaAdoption {
    len: usize,
    https: RankBins,
    ocsp_of_https: RankBins,
    staples_of_ocsp: RankBins,
}

impl AlexaAdoption {
    /// An empty summary for a list of `size` sites (the figures bin
    /// ranks into 100 bins: `bin_width = (size / 100).max(1)`).
    pub fn new(size: usize) -> AlexaAdoption {
        let bin_width = (size / 100).max(1);
        AlexaAdoption {
            len: 0,
            https: RankBins::new(bin_width),
            ocsp_of_https: RankBins::new(bin_width),
            staples_of_ocsp: RankBins::new(bin_width),
        }
    }

    /// Fold one site (1-based `rank`) into the summary.
    pub fn record(&mut self, rank: usize, https: bool, ocsp: bool, staples: bool) {
        self.len += 1;
        self.https.record(rank, https);
        if https {
            self.ocsp_of_https.record(rank, ocsp);
        }
        if ocsp {
            self.staples_of_ocsp.record(rank, staples);
        }
    }

    /// Number of sites recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no sites were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// HTTPS adoption by rank bin (Figure 2, first curve).
    pub fn https(&self) -> &RankBins {
        &self.https
    }

    /// OCSP adoption among HTTPS sites by rank bin (Figure 2, second
    /// curve).
    pub fn ocsp_of_https(&self) -> &RankBins {
        &self.ocsp_of_https
    }

    /// Stapling adoption among OCSP sites by rank bin (Figure 11).
    pub fn staples_of_ocsp(&self) -> &RankBins {
        &self.staples_of_ocsp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_and_stream(samples: &[f64]) -> (Cdf, StreamingCdf) {
        (
            Cdf::from_samples(samples.iter().copied()),
            StreamingCdf::from_samples(samples.iter().copied()),
        )
    }

    #[test]
    fn quantiles_match_batch_cdf_exactly() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let (mut batch, stream) = batch_and_stream(&samples);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(stream.quantile(q), batch.quantile(q), "q={q}");
        }
        assert_eq!(stream.median(), batch.median());
        assert_eq!(stream.min(), batch.min());
        assert_eq!(stream.max(), batch.max());
        assert_eq!(stream.len(), batch.len());
    }

    #[test]
    fn pinned_infinite_mass_cases_match_batch() {
        // The PR 7 regression cases: [1, 2, 3] + ∞ has finite fraction
        // 0.75; everything above it is None on both representations.
        let (mut batch, mut stream) = batch_and_stream(&[1.0, 2.0, 3.0]);
        batch.add_infinite();
        stream.add_infinite();
        assert_eq!(stream.quantile(0.75), Some(3.0));
        assert_eq!(batch.quantile(0.75), Some(3.0));
        assert_eq!(stream.quantile(0.76), None);
        assert_eq!(batch.quantile(0.76), None);
        assert_eq!(stream.quantile(0.9), None);
        assert_eq!(stream.quantile(1.0), None);
        assert_eq!(stream.max(), Some(3.0));
        assert_eq!(stream.len(), 4);
        assert_eq!(stream.infinite_count(), 1);

        // Half-infinite split.
        let (mut batch, mut stream) = batch_and_stream(&[1.0, 2.0]);
        for _ in 0..2 {
            batch.add_infinite();
            stream.add_infinite();
        }
        assert_eq!(stream.median(), Some(2.0));
        assert_eq!(batch.median(), Some(2.0));
        assert_eq!(stream.quantile(0.51), None);

        // All-infinite.
        let mut all = StreamingCdf::new();
        all.add_infinite();
        assert_eq!(all.quantile(0.0), None);
        assert_eq!(all.quantile(0.5), None);
        assert_eq!(all.max(), None);
    }

    #[test]
    fn curve_and_fraction_match_batch() {
        let samples = [5.0, 1.0, 3.0, 3.0, 2.0, 8.0, 3.0];
        let (mut batch, mut stream) = batch_and_stream(&samples);
        batch.add_infinite();
        stream.add_infinite();
        assert_eq!(stream.curve(), batch.curve());
        for x in [0.0, 1.0, 2.5, 3.0, 8.0, 100.0] {
            assert_eq!(stream.fraction_at_most(x), batch.fraction_at_most(x));
        }
    }

    #[test]
    fn add_routes_positive_infinity() {
        let mut stream = StreamingCdf::new();
        stream.add(1.0);
        stream.add(f64::INFINITY);
        assert_eq!(stream.len(), 2);
        assert_eq!(stream.infinite_count(), 1);
        assert_eq!(stream.distinct(), 1);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn add_nan_panics() {
        StreamingCdf::new().add(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn add_negative_infinity_panics() {
        StreamingCdf::new().add(f64::NEG_INFINITY);
    }

    #[test]
    fn merge_equals_single_accumulator_in_any_order() {
        let a = StreamingCdf::from_samples([1.0, 2.0, 2.0]);
        let mut b = StreamingCdf::from_samples([2.0, 7.0]);
        b.add_infinite();
        let whole = {
            let mut w = StreamingCdf::from_samples([1.0, 2.0, 2.0, 2.0, 7.0]);
            w.add_infinite();
            w
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn to_cdf_round_trips() {
        let mut stream = StreamingCdf::from_samples([4.0, 4.0, 1.0, 9.0]);
        stream.add_infinite();
        let mut expanded = stream.to_cdf();
        assert_eq!(expanded.len(), stream.len());
        assert_eq!(expanded.infinite_count(), stream.infinite_count());
        assert_eq!(expanded.curve(), stream.curve());
        assert_eq!(expanded.median(), stream.median());
    }

    #[test]
    fn negative_zero_folds_onto_positive_zero() {
        let stream = StreamingCdf::from_samples([-0.0, 0.0]);
        assert_eq!(stream.distinct(), 1);
        assert_eq!(stream.max().map(f64::to_bits), Some(0.0f64.to_bits()));
    }

    #[test]
    fn empty_is_safe() {
        let stream = StreamingCdf::new();
        assert!(stream.is_empty());
        assert_eq!(stream.fraction_at_most(1.0), 0.0);
        assert_eq!(stream.median(), None);
        assert_eq!(stream.min(), None);
    }

    #[test]
    fn alexa_adoption_matches_figure_folds() {
        // Replicate the fig2/fig11 batch fold by hand and compare.
        let sites: Vec<(usize, bool, bool, bool)> = (1..=200)
            .map(|rank| {
                let https = rank % 4 != 0;
                let ocsp = https && rank % 3 != 0;
                let staples = ocsp && rank % 5 == 0;
                (rank, https, ocsp, staples)
            })
            .collect();
        let mut fold = AlexaAdoption::new(sites.len());
        let bin_width = (sites.len() / 100).max(1);
        let mut https_bins = RankBins::new(bin_width);
        let mut ocsp_bins = RankBins::new(bin_width);
        let mut staple_bins = RankBins::new(bin_width);
        for &(rank, https, ocsp, staples) in &sites {
            fold.record(rank, https, ocsp, staples);
            https_bins.record(rank, https);
            if https {
                ocsp_bins.record(rank, ocsp);
            }
            if ocsp {
                staple_bins.record(rank, staples);
            }
        }
        assert_eq!(fold.len(), sites.len());
        assert_eq!(fold.https().percentages(), https_bins.percentages());
        assert_eq!(fold.ocsp_of_https().percentages(), ocsp_bins.percentages());
        assert_eq!(
            fold.staples_of_ocsp().percentages(),
            staple_bins.percentages()
        );
        assert_eq!(
            fold.https().overall_percentage(),
            https_bins.overall_percentage()
        );
        assert_eq!(
            fold.staples_of_ocsp().popularity_gradient(),
            staple_bins.popularity_gradient()
        );
    }
}
