//! Time-binned aggregation.

use asn1::Time;
use std::collections::BTreeMap;

/// Accumulates `(time, success)`-style observations into fixed-width
/// bins and reports per-bin fractions and counts — the engine behind the
/// availability plots (Figures 3–5) and the adoption-over-time plot
/// (Figure 12).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bin_secs: i64,
    bins: BTreeMap<i64, Bin>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bin {
    hits: u64,
    total: u64,
    sum: f64,
}

impl TimeSeries {
    /// A series with `bin_secs`-wide bins.
    ///
    /// # Panics
    ///
    /// Panics if `bin_secs` is not positive.
    pub fn new(bin_secs: i64) -> TimeSeries {
        assert!(bin_secs > 0, "bin width must be positive");
        TimeSeries {
            bin_secs,
            bins: BTreeMap::new(),
        }
    }

    fn bin_of(&self, t: Time) -> i64 {
        t.unix().div_euclid(self.bin_secs)
    }

    /// Record a boolean observation (e.g. request success).
    pub fn record_bool(&mut self, t: Time, hit: bool) {
        let bin = self.bins.entry(self.bin_of(t)).or_default();
        bin.total += 1;
        if hit {
            bin.hits += 1;
        }
    }

    /// Record a weighted observation: `hits` out of `total` (used when a
    /// single probe stands in for many dependent domains, as in the
    /// Figure 4 impact analysis).
    pub fn record_hits(&mut self, t: Time, hits: u64, total: u64) {
        let bin = self.bins.entry(self.bin_of(t)).or_default();
        bin.total += total;
        bin.hits += hits;
    }

    /// Record a numeric observation (averaged per bin).
    pub fn record_value(&mut self, t: Time, value: f64) {
        let bin = self.bins.entry(self.bin_of(t)).or_default();
        bin.total += 1;
        bin.sum += value;
    }

    /// Per-bin `(bin_start_time, hit_fraction)`.
    pub fn fractions(&self) -> Vec<(Time, f64)> {
        self.bins
            .iter()
            .map(|(&k, b)| {
                (
                    Time::from_unix(k * self.bin_secs),
                    b.hits as f64 / b.total.max(1) as f64,
                )
            })
            .collect()
    }

    /// Per-bin `(bin_start_time, hit_count)` — absolute counts, as in
    /// Figure 4's "number of domains" axis.
    pub fn counts(&self) -> Vec<(Time, u64)> {
        self.bins
            .iter()
            .map(|(&k, b)| (Time::from_unix(k * self.bin_secs), b.hits))
            .collect()
    }

    /// Per-bin `(bin_start_time, mean_value)`.
    pub fn means(&self) -> Vec<(Time, f64)> {
        self.bins
            .iter()
            .map(|(&k, b)| {
                (
                    Time::from_unix(k * self.bin_secs),
                    b.sum / b.total.max(1) as f64,
                )
            })
            .collect()
    }

    /// Overall hit fraction across all bins.
    pub fn overall_fraction(&self) -> f64 {
        let (hits, total) = self
            .bins
            .values()
            .fold((0u64, 0u64), |(h, t), b| (h + b.hits, t + b.total));
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Number of bins with at least one observation.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Fold another series into this one, bin by bin. Counters are
    /// plain sums, so merging per-shard partials in shard-id order
    /// reproduces the serial series exactly (for `record_value` series
    /// the float sums are still deterministic because the merge order is
    /// fixed).
    ///
    /// # Panics
    ///
    /// Panics if the bin widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.bin_secs, other.bin_secs,
            "cannot merge series with different bin widths"
        );
        for (&k, b) in &other.bins {
            let bin = self.bins.entry(k).or_default();
            bin.hits += b.hits;
            bin.total += b.total;
            bin.sum += b.sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: i64) -> Time {
        Time::from_civil(2018, 4, 25, 0, 0, 0) + h * 3_600
    }

    #[test]
    fn fractions_per_bin() {
        let mut ts = TimeSeries::new(3_600);
        ts.record_bool(t(0), true);
        ts.record_bool(t(0), true);
        ts.record_bool(t(0), false);
        ts.record_bool(t(1), false);
        let f = ts.fractions();
        assert_eq!(f.len(), 2);
        assert!((f[0].1 - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(f[1].1, 0.0);
        assert_eq!(ts.overall_fraction(), 0.5);
    }

    #[test]
    fn counts_and_means() {
        let mut ts = TimeSeries::new(3_600);
        ts.record_bool(t(0), true);
        ts.record_bool(t(0), true);
        assert_eq!(ts.counts()[0].1, 2);

        let mut ms = TimeSeries::new(3_600);
        ms.record_value(t(0), 10.0);
        ms.record_value(t(0), 20.0);
        assert_eq!(ms.means()[0].1, 15.0);
    }

    #[test]
    fn weighted_hits() {
        let mut ts = TimeSeries::new(3_600);
        ts.record_hits(t(0), 163_000, 600_000);
        assert_eq!(ts.counts()[0].1, 163_000);
        assert!((ts.fractions()[0].1 - 163_000.0 / 600_000.0).abs() < 1e-9);
    }

    #[test]
    fn bins_are_time_ordered() {
        let mut ts = TimeSeries::new(3_600);
        ts.record_bool(t(5), true);
        ts.record_bool(t(1), true);
        ts.record_bool(t(3), true);
        let times: Vec<_> = ts.fractions().iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ts.bin_count(), 3);
    }

    #[test]
    fn empty_overall_fraction() {
        let ts = TimeSeries::new(60);
        assert_eq!(ts.overall_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bin_width_panics() {
        TimeSeries::new(0);
    }

    #[test]
    fn merge_equals_serial_recording() {
        let mut serial = TimeSeries::new(3_600);
        let mut a = TimeSeries::new(3_600);
        let mut b = TimeSeries::new(3_600);
        for (h, hit) in [(0, true), (0, false), (1, true), (5, false)] {
            serial.record_bool(t(h), hit);
            a.record_bool(t(h), hit);
        }
        for (h, hit) in [(0, true), (2, true), (5, true)] {
            serial.record_bool(t(h), hit);
            b.record_bool(t(h), hit);
        }
        a.merge(&b);
        assert_eq!(serial.fractions(), a.fractions());
        assert_eq!(serial.counts(), a.counts());
        assert_eq!(serial.bin_count(), a.bin_count());
    }

    #[test]
    #[should_panic(expected = "different bin widths")]
    fn merge_rejects_mismatched_bins() {
        let mut a = TimeSeries::new(60);
        a.merge(&TimeSeries::new(120));
    }
}
