//! Cumulative distribution functions.
//!
//! # Infinite-mass contract
//!
//! A [`Cdf`] may carry +∞ samples ([`Cdf::add_infinite`] — blank
//! `nextUpdate` validity periods in Figure 8). They count toward
//! [`Cdf::len`] and cap [`Cdf::curve`] / [`Cdf::fraction_at_most`]
//! below 1.0, and any quantile that lands in that mass is `None`:
//! with `f` finite and `k` infinite samples, [`Cdf::quantile`] returns
//! `Some` exactly for `q ≤ f / (f + k)` and `None` above it. The
//! finite maximum is never reported for a quantile an infinite sample
//! occupies.

/// A CDF over `f64` samples, with optional +∞ entries (used for blank
/// `nextUpdate` validity periods in Figure 8). See the module docs for
/// the infinite-mass contract.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    infinite: usize,
    sorted: bool,
}

impl Cdf {
    /// An empty CDF.
    pub fn new() -> Cdf {
        Cdf::default()
    }

    /// Build from finite samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Cdf {
        let mut cdf = Cdf::new();
        for s in samples {
            cdf.add(s);
        }
        cdf
    }

    /// Add one sample. `+∞` is routed to [`Cdf::add_infinite`]; NaN and
    /// `−∞` panic immediately — in every build profile — rather than
    /// poisoning the sort inside `ensure_sorted` much later.
    pub fn add(&mut self, sample: f64) {
        if sample == f64::INFINITY {
            self.add_infinite();
            return;
        }
        assert!(
            sample.is_finite(),
            "Cdf::add: non-finite sample {sample} (only +inf is representable, via add_infinite)"
        );
        self.samples.push(sample);
        self.sorted = false;
    }

    /// Add a +∞ sample.
    pub fn add_infinite(&mut self) {
        self.infinite += 1;
    }

    /// Total sample count (finite + infinite).
    pub fn len(&self) -> usize {
        self.samples.len() + self.infinite
    }

    /// Whether no samples were added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of infinite samples.
    pub fn infinite_count(&self) -> usize {
        self.infinite
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Fraction of samples ≤ `x` (infinite samples are never ≤ any
    /// finite `x`).
    pub fn fraction_at_most(&mut self, x: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let below = self.samples.partition_point(|&s| s <= x);
        below as f64 / self.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) over finite samples; `None` when the
    /// quantile falls into the infinite mass or there are no samples.
    ///
    /// The rank is `⌈q·n⌉` over all `n` samples (infinite included), so
    /// a quantile is `Some` exactly when `q` does not exceed the finite
    /// fraction `f/n`. The old `⌊q·(n−1)⌋` rule clamped into the finite
    /// samples and leaked the finite maximum for quantiles the infinite
    /// mass owns.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let idx = if q <= 0.0 {
            0
        } else {
            (q * self.len() as f64).ceil() as usize - 1
        };
        self.samples.get(idx).copied()
    }

    /// Median, if finite.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The finite maximum.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// The finite minimum.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.first().copied()
    }

    /// The full curve as `(x, F(x))` points, one per distinct sample —
    /// exactly what a plotting tool wants. Infinite mass shows up as the
    /// curve plateauing below 1.0.
    pub fn curve(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.len() as f64;
        let mut points = Vec::new();
        let mut count = 0usize;
        let mut i = 0;
        while i < self.samples.len() {
            let x = self.samples[i];
            while i < self.samples.len() && self.samples[i] == x {
                count += 1;
                i += 1;
            }
            points.push((x, count as f64 / n));
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_quantiles() {
        let mut cdf = Cdf::from_samples((1..=100).map(f64::from));
        assert_eq!(cdf.median(), Some(50.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(100.0));
    }

    #[test]
    fn fraction_at_most() {
        let mut cdf = Cdf::from_samples(vec![1.0, 2.0, 2.0, 10.0]);
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.fraction_at_most(2.0), 0.75);
        assert_eq!(cdf.fraction_at_most(100.0), 1.0);
    }

    #[test]
    fn infinite_mass_caps_the_curve() {
        let mut cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0]);
        cdf.add_infinite();
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.fraction_at_most(f64::MAX), 0.75);
        let curve = cdf.curve();
        assert_eq!(curve.last().unwrap().1, 0.75);
    }

    #[test]
    fn quantiles_in_the_infinite_mass_are_none() {
        // Regression: with [1, 2, 3] + ∞ the finite fraction is 0.75,
        // and the old floor(q·(len−1)) rule clamped q=0.9 into the
        // finite samples, leaking Some(3.0) for a quantile the
        // infinite mass owns.
        let mut cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0]);
        cdf.add_infinite();
        assert_eq!(cdf.quantile(0.75), Some(3.0));
        assert_eq!(cdf.quantile(0.76), None, "just above the finite fraction");
        assert_eq!(cdf.quantile(0.9), None);
        assert_eq!(cdf.quantile(1.0), None);
        assert_eq!(cdf.max(), Some(3.0), "max still reports the finite max");

        // Every q in the infinite mass is None, no matter the split.
        let mut half = Cdf::from_samples(vec![1.0, 2.0]);
        half.add_infinite();
        half.add_infinite();
        assert_eq!(half.median(), Some(2.0));
        assert_eq!(half.quantile(0.51), None);

        // All-infinite: nothing finite to report at any q.
        let mut all = Cdf::new();
        all.add_infinite();
        assert_eq!(all.quantile(0.0), None);
        assert_eq!(all.quantile(0.5), None);
    }

    #[test]
    fn add_routes_positive_infinity_to_the_infinite_mass() {
        let mut cdf = Cdf::new();
        cdf.add(1.0);
        cdf.add(f64::INFINITY);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.infinite_count(), 1);
        assert_eq!(cdf.fraction_at_most(f64::MAX), 0.5);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn add_nan_panics_in_every_profile() {
        // A plain assert!, not debug_assert!: a NaN accepted in release
        // used to blow up much later, inside ensure_sorted's comparator.
        Cdf::new().add(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn add_negative_infinity_panics() {
        Cdf::new().add(f64::NEG_INFINITY);
    }

    #[test]
    fn empty_is_safe() {
        let mut cdf = Cdf::new();
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_most(1.0), 0.0);
        assert_eq!(cdf.median(), None);
    }

    #[test]
    fn curve_is_monotone() {
        let mut cdf = Cdf::from_samples(vec![5.0, 1.0, 3.0, 3.0, 2.0, 8.0]);
        let curve = cdf.curve();
        for pair in curve.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn interleaved_add_and_query() {
        let mut cdf = Cdf::new();
        cdf.add(5.0);
        assert_eq!(cdf.median(), Some(5.0));
        cdf.add(1.0);
        cdf.add(9.0);
        assert_eq!(cdf.median(), Some(5.0));
        assert_eq!(cdf.min(), Some(1.0));
    }
}
