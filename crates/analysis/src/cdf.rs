//! Cumulative distribution functions.

/// A CDF over `f64` samples, with optional +∞ entries (used for blank
/// `nextUpdate` validity periods in Figure 8).
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    infinite: usize,
    sorted: bool,
}

impl Cdf {
    /// An empty CDF.
    pub fn new() -> Cdf {
        Cdf::default()
    }

    /// Build from finite samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Cdf {
        let mut cdf = Cdf::new();
        for s in samples {
            cdf.add(s);
        }
        cdf
    }

    /// Add one finite sample.
    pub fn add(&mut self, sample: f64) {
        debug_assert!(sample.is_finite(), "use add_infinite for unbounded samples");
        self.samples.push(sample);
        self.sorted = false;
    }

    /// Add a +∞ sample.
    pub fn add_infinite(&mut self) {
        self.infinite += 1;
    }

    /// Total sample count (finite + infinite).
    pub fn len(&self) -> usize {
        self.samples.len() + self.infinite
    }

    /// Whether no samples were added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of infinite samples.
    pub fn infinite_count(&self) -> usize {
        self.infinite
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Fraction of samples ≤ `x` (infinite samples are never ≤ any
    /// finite `x`).
    pub fn fraction_at_most(&mut self, x: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let below = self.samples.partition_point(|&s| s <= x);
        below as f64 / self.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) over finite samples; `None` when the
    /// quantile falls into the infinite mass or there are no samples.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let idx = (q * (self.len() - 1) as f64).floor() as usize;
        self.samples.get(idx).copied()
    }

    /// Median, if finite.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The finite maximum.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// The finite minimum.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.first().copied()
    }

    /// The full curve as `(x, F(x))` points, one per distinct sample —
    /// exactly what a plotting tool wants. Infinite mass shows up as the
    /// curve plateauing below 1.0.
    pub fn curve(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.len() as f64;
        let mut points = Vec::new();
        let mut count = 0usize;
        let mut i = 0;
        while i < self.samples.len() {
            let x = self.samples[i];
            while i < self.samples.len() && self.samples[i] == x {
                count += 1;
                i += 1;
            }
            points.push((x, count as f64 / n));
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_quantiles() {
        let mut cdf = Cdf::from_samples((1..=100).map(f64::from));
        assert_eq!(cdf.median(), Some(50.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(100.0));
    }

    #[test]
    fn fraction_at_most() {
        let mut cdf = Cdf::from_samples(vec![1.0, 2.0, 2.0, 10.0]);
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.fraction_at_most(2.0), 0.75);
        assert_eq!(cdf.fraction_at_most(100.0), 1.0);
    }

    #[test]
    fn infinite_mass_caps_the_curve() {
        let mut cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0]);
        cdf.add_infinite();
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.fraction_at_most(f64::MAX), 0.75);
        let curve = cdf.curve();
        assert_eq!(curve.last().unwrap().1, 0.75);
    }

    #[test]
    fn empty_is_safe() {
        let mut cdf = Cdf::new();
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_most(1.0), 0.0);
        assert_eq!(cdf.median(), None);
    }

    #[test]
    fn curve_is_monotone() {
        let mut cdf = Cdf::from_samples(vec![5.0, 1.0, 3.0, 3.0, 2.0, 8.0]);
        let curve = cdf.curve();
        for pair in curve.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn interleaved_add_and_query() {
        let mut cdf = Cdf::new();
        cdf.add(5.0);
        assert_eq!(cdf.median(), Some(5.0));
        cdf.add(1.0);
        cdf.add(9.0);
        assert_eq!(cdf.median(), Some(5.0));
        assert_eq!(cdf.min(), Some(1.0));
    }
}
