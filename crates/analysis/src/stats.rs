//! Ensemble statistics: mean, sample standard deviation, Student-t
//! 95 % confidence intervals, and per-cell folding of repeated-seed
//! artifact tables.
//!
//! Every paper-shape artifact used to be a single draw from one RNG
//! seed. The ensemble layer (`mustaple-bench`) reruns a campaign under
//! N independent seeds and folds the N copies of each artifact table
//! into a *companion* table (the `*.ens.csv` files): one row per
//! numeric CSV cell carrying `mean`, the 95 % confidence interval
//! bounds, `n`, the sample standard deviation, and the min/max envelope
//! across seeds. The estimator discipline follows the
//! repeated-measurement reporting of "Rigorous statistical analysis of
//! HTTPS reachability" (arXiv 1706.02813): small-sample intervals use
//! the Student t distribution with `n − 1` degrees of freedom, never
//! the normal approximation.
//!
//! Everything here is deterministic: folding N tables in seed order is
//! a pure function of the tables, so ensemble companions inherit the
//! repo's serial ≡ parallel byte-equality contract.

use crate::Table;

/// Header of every ensemble companion table (`*.ens.csv`).
///
/// `metric` names one numeric cell of the underlying artifact
/// (`rowkey:column`, or a quantile such as `q50` for CDF-shaped
/// figures); `min`/`max` are the across-seed envelope.
pub const ENSEMBLE_HEADER: [&str; 8] = [
    "metric", "mean", "ci_lo", "ci_hi", "n", "stddev", "min", "max",
];

/// Two-sided 95 % critical values of the Student t distribution,
/// `(degrees of freedom, t)`. Between entries the *smaller* tabulated
/// df applies (its t is larger), so interpolation error only ever
/// widens an interval — the conservative direction for a gate.
const T95: [(usize, f64); 33] = [
    (1, 12.706),
    (2, 4.303),
    (3, 3.182),
    (4, 2.776),
    (5, 2.571),
    (6, 2.447),
    (7, 2.365),
    (8, 2.306),
    (9, 2.262),
    (10, 2.228),
    (11, 2.201),
    (12, 2.179),
    (13, 2.160),
    (14, 2.145),
    (15, 2.131),
    (16, 2.120),
    (17, 2.110),
    (18, 2.101),
    (19, 2.093),
    (20, 2.086),
    (21, 2.080),
    (22, 2.074),
    (23, 2.069),
    (24, 2.064),
    (25, 2.060),
    (26, 2.056),
    (27, 2.052),
    (28, 2.048),
    (29, 2.045),
    (30, 2.042),
    (40, 2.021),
    (60, 2.000),
    (120, 1.980),
];

/// The two-sided 95 % Student-t critical value for `df` degrees of
/// freedom: the entry for the largest tabulated df ≤ `df`, so beyond
/// df = 120 the (conservative) 1.980 applies rather than the normal
/// approximation's 1.960.
///
/// # Panics
///
/// Panics on `df == 0` — a confidence interval needs at least two
/// samples.
pub fn t_critical_95(df: usize) -> f64 {
    assert!(df >= 1, "t distribution needs at least 1 degree of freedom");
    let mut t = T95[0].1;
    for &(table_df, value) in T95.iter().rev() {
        if table_df <= df {
            t = value;
            break;
        }
    }
    t
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation (`n − 1` denominator; 0.0 for fewer than
/// two samples).
pub fn sample_stddev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let ss: f64 = samples.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (samples.len() - 1) as f64).sqrt()
}

/// One-pass, mergeable mean/variance accumulator (Welford's online
/// algorithm with Chan's parallel combine step).
///
/// The streaming counterpart of [`mean`] + [`sample_stddev`]: it never
/// retains the samples, so a figure-grade mean/stddev costs three
/// `f64`s regardless of scale, and per-chunk accumulators merge in the
/// executor's canonical shard order. Agreement with the two-pass batch
/// estimators is to floating-point rounding (property-tested to tight
/// relative tolerance in `tests/streaming.rs`); the committed ensemble
/// companions keep using [`Summary::from_samples`], whose bytes are
/// baselined.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Build from a batch of samples (for tests and parity checks).
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Welford {
        let mut w = Welford::new();
        for s in samples {
            w.add(s);
        }
        w
    }

    /// Fold in one sample.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite sample — a single NaN would silently
    /// poison every later estimate.
    pub fn add(&mut self, sample: f64) {
        assert!(
            sample.is_finite(),
            "Welford::add: non-finite sample {sample}"
        );
        self.n += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (sample - self.mean);
    }

    /// Fold another accumulator in (Chan et al.'s pairwise combine).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.n += other.n;
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty, matching [`mean`]).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (`n − 1` denominator; 0.0 for fewer
    /// than two samples, matching [`sample_stddev`]).
    pub fn sample_stddev(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        // Rounding can push m2 a hair below zero on constant inputs.
        (self.m2.max(0.0) / (self.n - 1) as f64).sqrt()
    }
}

/// Sum `f64`s in a canonical order regardless of the input order:
/// collect, sort by IEEE total order, then fold left-to-right. Float
/// addition is not associative, so folding a `HashMap`'s iteration
/// order directly would make the result depend on hasher state; this
/// helper is one of the blessed order-insensitive accumulators the
/// float-determinism lint accepts (with [`Welford`] and
/// `StreamingCdf`).
pub fn sum_sorted(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sorted: Vec<f64> = values.into_iter().collect();
    sorted.sort_by(f64::total_cmp);
    sorted.iter().sum()
}

/// The per-cell summary an ensemble reports: mean, sample stddev,
/// t-distribution 95 % confidence interval, and the across-seed
/// min/max envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples (seeds).
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0.0 when `n < 2`).
    pub stddev: f64,
    /// Lower 95 % confidence bound on the mean.
    pub ci_lo: f64,
    /// Upper 95 % confidence bound on the mean.
    pub ci_hi: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample set. `None` when empty. A single sample
    /// degenerates to the raw value: `mean == ci_lo == ci_hi`,
    /// `stddev == 0`.
    pub fn from_samples(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = mean(samples);
        let stddev = sample_stddev(samples);
        let half_width = if n < 2 {
            0.0
        } else {
            t_critical_95(n - 1) * stddev / (n as f64).sqrt()
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            n,
            mean,
            stddev,
            ci_lo: mean - half_width,
            ci_hi: mean + half_width,
            min,
            max,
        })
    }

    /// Width of the confidence interval (`ci_hi − ci_lo`).
    pub fn ci_width(&self) -> f64 {
        self.ci_hi - self.ci_lo
    }

    /// Render as one companion-table row under [`ENSEMBLE_HEADER`].
    pub fn row(&self, metric: &str) -> Vec<String> {
        vec![
            metric.to_owned(),
            fmt_stat(self.mean),
            fmt_stat(self.ci_lo),
            fmt_stat(self.ci_hi),
            self.n.to_string(),
            fmt_stat(self.stddev),
            fmt_stat(self.min),
            fmt_stat(self.max),
        ]
    }
}

/// Format one statistic: six decimal places, trailing zeros (and a bare
/// trailing point) trimmed, `-0` normalized to `0`. Deterministic — a
/// pure function of the `f64` bits — so companion CSVs are byte-stable.
pub fn fmt_stat(v: f64) -> String {
    let mut s = format!("{v:.6}");
    if s.contains('.') {
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
    }
    if s == "-0" {
        s = "0".to_owned();
    }
    s
}

/// Parse one table cell as a statistic sample.
///
/// Accepts plain `f64` syntax and percent cells (`"17.2%"` → `17.2` —
/// the value stays in percent units, matching the column it came from).
/// Non-finite values (including literal `inf`, which `f64` parses) and
/// non-numeric cells yield `None`: means and intervals over them would
/// be meaningless.
fn parse_cell(cell: &str) -> Option<f64> {
    let text = cell.strip_suffix('%').unwrap_or(cell);
    match text.parse::<f64>() {
        Ok(v) if v.is_finite() => Some(v),
        _ => None,
    }
}

/// Quantiles reported for CDF-shaped tables, as `(name, q)`.
const CDF_QUANTILES: [(&str, f64); 6] = [
    ("q10", 0.10),
    ("q25", 0.25),
    ("q50", 0.50),
    ("q75", 0.75),
    ("q90", 0.90),
    ("q99", 0.99),
];

/// Fold N same-shaped artifact tables (one per seed, in canonical seed
/// order) into an ensemble companion table under [`ENSEMBLE_HEADER`].
///
/// Two folding modes:
///
/// * **CDF tables** (header exactly `x,cdf`): the per-seed support
///   points differ, so cells cannot align. Instead each replica is
///   reduced to scalar statistics that *do* align — the row count
///   (`rows`) and the x-positions of fixed quantiles (`q10` … `q99`) —
///   and those are summarized. The `min`/`max` columns are then the
///   across-seed envelope of the curve at each quantile. Quantiles
///   where any replica's value is non-finite (Figure 8 plots blank
///   `nextUpdate` as ∞) are skipped.
/// * **Everything else**: rows are aligned across seeds by their first
///   (key) column — with an occurrence index for duplicate keys — and
///   every cell that parses numerically in *all* replicas becomes one
///   companion row named `rowkey:column`. Rows whose key is missing
///   from any replica are dropped: a responder that only shows up under
///   some seeds has no meaningful per-cell mean.
///
/// Returns `None` when `tables` is empty or the headers disagree
/// (artifact shape drift — nothing sensible to fold).
pub fn fold_tables(tables: &[Table]) -> Option<Table> {
    let first = tables.first()?;
    if tables.iter().any(|t| t.header() != first.header()) {
        return None;
    }
    let mut out = Table::new(&ENSEMBLE_HEADER);
    if first.header() == ["x", "cdf"] {
        fold_cdf(tables, &mut out);
    } else {
        fold_aligned(tables, &mut out);
    }
    Some(out)
}

/// Reduce one `x,cdf` table to `(rows, quantile x-positions)`.
fn cdf_scalars(table: &Table) -> (f64, Vec<Option<f64>>) {
    // Parse the curve, keeping non-finite x (the ∞ samples of Figure 8)
    // so quantiles that land on them are reported as unavailable rather
    // than silently taken from the previous point.
    let curve: Vec<(f64, f64)> = table
        .rows()
        .filter_map(|row| {
            let x = row[0].strip_suffix('%').unwrap_or(&row[0]).parse().ok()?;
            let f = row[1].parse().ok()?;
            Some((x, f))
        })
        .collect();
    let quantiles = CDF_QUANTILES
        .iter()
        .map(|&(_, q)| {
            curve
                .iter()
                .find(|&&(_, f)| f >= q)
                .map(|&(x, _)| x)
                .filter(|x| x.is_finite())
        })
        .collect();
    (table.len() as f64, quantiles)
}

fn fold_cdf(tables: &[Table], out: &mut Table) {
    let reduced: Vec<(f64, Vec<Option<f64>>)> = tables.iter().map(cdf_scalars).collect();
    let rows: Vec<f64> = reduced.iter().map(|(n, _)| *n).collect();
    if let Some(summary) = Summary::from_samples(&rows) {
        out.row(&summary.row("rows"));
    }
    for (i, &(name, _)) in CDF_QUANTILES.iter().enumerate() {
        let samples: Option<Vec<f64>> = reduced.iter().map(|(_, qs)| qs[i]).collect();
        if let Some(summary) = samples.as_deref().and_then(Summary::from_samples) {
            out.row(&summary.row(name));
        }
    }
}

/// A table's rows keyed by `(first-column value, occurrence index)`.
type KeyedRows<'a> = Vec<((&'a str, usize), &'a [String])>;

fn fold_aligned(tables: &[Table], out: &mut Table) {
    let first = &tables[0];
    // Key rows by (first-column value, occurrence index) so duplicate
    // keys (e.g. repeated "counter" cells) still align positionally.
    let keyed: Vec<KeyedRows> = tables
        .iter()
        .map(|t| {
            let mut seen: Vec<(&str, usize)> = Vec::new();
            t.rows()
                .map(|row| {
                    let key = row[0].as_str();
                    let occurrence = seen.iter().filter(|(k, _)| *k == key).count();
                    seen.push((key, occurrence));
                    ((key, occurrence), row)
                })
                .collect()
        })
        .collect();
    for &((key, occurrence), row) in &keyed[0] {
        // The same (key, occurrence) in every replica, or skip the row.
        let aligned: Option<Vec<&[String]>> = keyed
            .iter()
            .map(|rows| {
                rows.iter()
                    .find(|&&(k, _)| k == (key, occurrence))
                    .map(|&(_, r)| r)
            })
            .collect();
        let Some(aligned) = aligned else { continue };
        for (col, column_name) in first.header().iter().enumerate().skip(1) {
            if parse_cell(&row[col]).is_none() {
                continue;
            }
            let samples: Option<Vec<f64>> = aligned.iter().map(|r| parse_cell(&r[col])).collect();
            let Some(summary) = samples.as_deref().and_then(Summary::from_samples) else {
                continue;
            };
            let metric = if occurrence == 0 {
                format!("{key}:{column_name}")
            } else {
                format!("{key}#{occurrence}:{column_name}")
            };
            out.row(&summary.row(&metric));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_sorted_is_order_insensitive_to_the_bit() {
        let forward = vec![1e16, 1.0, -1e16, 0.25, 3.5, 1e-9];
        let mut reversed = forward.clone();
        reversed.reverse();
        let mut interleaved = vec![0.25, 1e16, 1e-9, -1e16, 3.5, 1.0];
        assert_eq!(
            sum_sorted(forward).to_bits(),
            sum_sorted(reversed).to_bits()
        );
        assert_eq!(
            sum_sorted(interleaved.drain(..)).to_bits(),
            sum_sorted(vec![1e16, 1.0, -1e16, 0.25, 3.5, 1e-9]).to_bits()
        );
    }

    #[test]
    fn mean_and_stddev_match_hand_computation() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[3.0]), 3.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(sample_stddev(&[2.0]), 0.0);
        // s² = ((2−3)² + (4−3)²) / (2−1) = 2.
        assert!((sample_stddev(&[2.0, 4.0]) - 2.0_f64.sqrt()).abs() < 1e-12);
        // s² = ((1−3)² + (3−3)² + (5−3)²) / 2 = 4.
        assert_eq!(sample_stddev(&[1.0, 3.0, 5.0]), 2.0);
    }

    #[test]
    fn t_table_spot_checks() {
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(4), 2.776);
        assert_eq!(t_critical_95(30), 2.042);
        // Between tabulated dfs: the smaller df's (larger) t applies.
        assert_eq!(t_critical_95(35), 2.042);
        assert_eq!(t_critical_95(119), 2.000);
        assert_eq!(t_critical_95(121), 1.980);
        assert_eq!(t_critical_95(1_000_000), 1.980);
    }

    #[test]
    #[should_panic(expected = "degree of freedom")]
    fn t_needs_a_degree_of_freedom() {
        t_critical_95(0);
    }

    #[test]
    fn n2_interval_matches_hand_computation() {
        // Samples {2, 4}: mean 3, s = √2, half-width
        // t₉₅(1) · s / √2 = 12.706 · √2 / √2 = 12.706.
        let s = Summary::from_samples(&[2.0, 4.0]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 3.0);
        assert!((s.ci_lo - (3.0 - 12.706)).abs() < 1e-9);
        assert!((s.ci_hi - (3.0 + 12.706)).abs() < 1e-9);
        assert_eq!((s.min, s.max), (2.0, 4.0));
    }

    #[test]
    fn zero_variance_cells_collapse_to_a_point() {
        let s = Summary::from_samples(&[5.0, 5.0, 5.0, 5.0]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!((s.ci_lo, s.ci_hi), (5.0, 5.0));
        assert_eq!(s.ci_width(), 0.0);
    }

    #[test]
    fn single_seed_degenerates_to_the_raw_value() {
        let s = Summary::from_samples(&[7.25]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!((s.mean, s.ci_lo, s.ci_hi), (7.25, 7.25, 7.25));
        assert_eq!(s.stddev, 0.0);
        assert_eq!((s.min, s.max), (7.25, 7.25));
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn stat_formatting_is_trimmed_and_normal() {
        assert_eq!(fmt_stat(3.0), "3");
        assert_eq!(fmt_stat(0.5), "0.5");
        assert_eq!(fmt_stat(2.0 / 3.0), "0.666667");
        assert_eq!(fmt_stat(-0.0000001), "0");
        assert_eq!(fmt_stat(2_090_880.0), "2090880");
    }

    #[test]
    fn cells_parse_plain_and_percent_but_not_text() {
        assert_eq!(parse_cell("17.2"), Some(17.2));
        assert_eq!(parse_cell("17.2%"), Some(17.2));
        assert_eq!(parse_cell("-3"), Some(-3.0));
        assert_eq!(parse_cell("yes"), None);
        assert_eq!(parse_cell("inf"), None);
        assert_eq!(parse_cell("count=3;sum=9"), None);
    }

    fn keyed_table(values: &[(&str, f64, &str)]) -> Table {
        let mut t = Table::new(&["time", "pct", "verdict"]);
        for &(key, v, text) in values {
            t.row(&[key.to_owned(), format!("{v:.3}"), text.to_owned()]);
        }
        t
    }

    #[test]
    fn fold_aligns_rows_by_key_and_summarizes_numeric_cells() {
        let a = keyed_table(&[("t0", 1.0, "yes"), ("t1", 10.0, "no")]);
        let b = keyed_table(&[("t0", 3.0, "yes"), ("t1", 10.0, "no")]);
        let out = fold_tables(&[a, b]).unwrap();
        assert_eq!(
            out.header(),
            &["metric", "mean", "ci_lo", "ci_hi", "n", "stddev", "min", "max"]
        );
        let rows: Vec<&[String]> = out.rows().collect();
        // Only the numeric `pct` column summarizes; `verdict` is text.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], "t0:pct");
        assert_eq!(rows[0][1], "2"); // mean of 1 and 3
        assert_eq!(rows[0][4], "2"); // n
        assert_eq!(
            (&rows[0][6], &rows[0][7]),
            (&"1".to_owned(), &"3".to_owned())
        );
        // Zero variance row: interval collapses.
        assert_eq!(rows[1][0], "t1:pct");
        assert_eq!(rows[1][2], rows[1][3]);
        assert_eq!(rows[1][5], "0");
    }

    #[test]
    fn rows_missing_from_some_seed_are_dropped() {
        let a = keyed_table(&[("t0", 1.0, "x"), ("only-a", 5.0, "x")]);
        let b = keyed_table(&[("t0", 2.0, "x")]);
        let out = fold_tables(&[a, b]).unwrap();
        let metrics: Vec<&str> = out.rows().map(|r| r[0].as_str()).collect();
        assert_eq!(metrics, ["t0:pct"]);
    }

    #[test]
    fn duplicate_keys_align_by_occurrence() {
        let a = keyed_table(&[("dup", 1.0, "x"), ("dup", 100.0, "x")]);
        let b = keyed_table(&[("dup", 3.0, "x"), ("dup", 200.0, "x")]);
        let out = fold_tables(&[a, b]).unwrap();
        let rows: Vec<&[String]> = out.rows().collect();
        assert_eq!(rows[0][0], "dup:pct");
        assert_eq!(rows[0][1], "2");
        assert_eq!(rows[1][0], "dup#1:pct");
        assert_eq!(rows[1][1], "150");
    }

    fn cdf_table(points: &[(f64, f64)]) -> Table {
        let mut t = Table::new(&["x", "cdf"]);
        for &(x, f) in points {
            t.row(&[format!("{x:.2}"), format!("{f:.4}")]);
        }
        t
    }

    #[test]
    fn cdf_tables_fold_into_quantile_rows_with_envelopes() {
        let a = cdf_table(&[(1.0, 0.25), (2.0, 0.5), (4.0, 1.0)]);
        let b = cdf_table(&[(1.0, 0.25), (3.0, 0.5), (6.0, 1.0)]);
        let out = fold_tables(&[a, b]).unwrap();
        let rows: Vec<&[String]> = out.rows().collect();
        assert_eq!(rows[0][0], "rows");
        assert_eq!(rows[0][1], "3");
        let q50 = rows.iter().find(|r| r[0] == "q50").unwrap();
        assert_eq!(q50[1], "2.5"); // mean of 2 and 3
        assert_eq!((&q50[6], &q50[7]), (&"2".to_owned(), &"3".to_owned())); // envelope
        let q99 = rows.iter().find(|r| r[0] == "q99").unwrap();
        assert_eq!(q99[1], "5"); // mean of 4 and 6
    }

    #[test]
    fn cdf_quantiles_on_infinite_mass_are_skipped() {
        let mut with_inf = Table::new(&["x", "cdf"]);
        with_inf.row_strs(&["1.00", "0.5000"]);
        with_inf.row_strs(&["inf", "1.0000"]);
        let out = fold_tables(&[with_inf.clone(), with_inf]).unwrap();
        let metrics: Vec<&str> = out.rows().map(|r| r[0].as_str()).collect();
        assert!(metrics.contains(&"q50"), "{metrics:?}");
        assert!(!metrics.contains(&"q99"), "{metrics:?}");
    }

    #[test]
    fn mismatched_or_empty_inputs_fold_to_none() {
        assert!(fold_tables(&[]).is_none());
        let a = keyed_table(&[("t0", 1.0, "x")]);
        let b = cdf_table(&[(1.0, 1.0)]);
        assert!(fold_tables(&[a, b]).is_none());
    }

    #[test]
    fn folding_is_deterministic() {
        let a = keyed_table(&[("t0", 1.0, "x"), ("t1", 2.5, "y")]);
        let b = keyed_table(&[("t0", 4.0, "x"), ("t1", 2.5, "y")]);
        let once = fold_tables(&[a.clone(), b.clone()]).unwrap().to_csv();
        let twice = fold_tables(&[a, b]).unwrap().to_csv();
        assert_eq!(once, twice);
    }
}
