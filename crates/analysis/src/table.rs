//! Plain-text and CSV table rendering.
//!
//! Every regenerated figure/table is emitted both human-readably (for
//! the terminal) and as CSV (for plotting), so EXPERIMENTS.md can quote
//! outputs directly.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of string slices.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Table {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Iterate the data rows in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = &[String]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render column-aligned plain text.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[c] {
                    out.push(' ');
                }
            }
            // Trim the trailing pad of the final column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Render CSV (minimal quoting: fields containing commas or quotes
    /// are quoted).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|s| field(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|s| field(s)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Format seconds compactly (s / h / d).
pub fn secs(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else if v >= 86_400.0 {
        format!("{:.1}d", v / 86_400.0)
    } else if v >= 3_600.0 {
        format!("{:.1}h", v / 3_600.0)
    } else {
        format!("{v:.0}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row_strs(&["alpha", "1"]).row_strs(&["b", "22222"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      22222");
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new(&["a", "b"]);
        t.row_strs(&["plain", "has,comma"]);
        t.row_strs(&["has\"quote", "x"]);
        let csv = t.to_csv();
        assert!(csv.contains("plain,\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\",x"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        Table::new(&["one"]).row_strs(&["a", "b"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.954), "95.4%");
        assert_eq!(secs(30.0), "30s");
        assert_eq!(secs(7_200.0), "2.0h");
        assert_eq!(secs(604_800.0), "7.0d");
        assert_eq!(secs(f64::INFINITY), "inf");
    }
}
