//! Property tests for the health-state machine: the invariants the
//! issue pins — backoff monotonicity, recovery after K consecutive
//! successes, and merge associativity across arbitrary shard/chunk
//! splits.

use asn1::Time;
use mustaple_opsmon::{EventLog, HealthLog, HealthPolicy, HealthState, HealthTracker};
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = HealthPolicy> {
    (1u32..4, 0u32..4, 1u32..5, 1i64..120, 0i64..7_200).prop_map(
        |(degraded_after, failed_extra, recover_after, base, max_extra)| HealthPolicy {
            degraded_after,
            failed_after: degraded_after + failed_extra,
            recover_after,
            backoff_base_secs: base,
            backoff_max_secs: base + max_extra,
        },
    )
}

proptest! {
    /// Over any outcome sequence, the scheduled backoff delay never
    /// shrinks within a failure run, never exceeds the ceiling, and
    /// resets to the base once the subject recovers.
    #[test]
    fn backoff_is_monotone_within_a_failure_run(
        policy in policy_strategy(),
        outcomes in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut tracker = HealthTracker::new(policy);
        let mut in_run = false;
        let mut previous = 0i64;
        for (i, &ok) in outcomes.iter().enumerate() {
            tracker.observe(Time::from_unix(i as i64 * 60), ok);
            let backoff = tracker.backoff_secs();
            prop_assert!(backoff <= policy.backoff_max_secs);
            prop_assert!(backoff >= policy.backoff_base_secs.min(policy.backoff_max_secs));
            if !ok && in_run {
                prop_assert!(backoff >= previous, "backoff shrank mid-run at {i}");
            }
            if tracker.state() == HealthState::Healthy {
                prop_assert_eq!(
                    backoff,
                    policy.backoff_base_secs.min(policy.backoff_max_secs)
                );
            }
            in_run = !ok;
            previous = backoff;
        }
    }

    /// After any history, K consecutive successes always land the
    /// subject in Healthy with no pending retry.
    #[test]
    fn k_consecutive_successes_always_recover(
        policy in policy_strategy(),
        history in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut tracker = HealthTracker::new(policy);
        for (i, &ok) in history.iter().enumerate() {
            tracker.observe(Time::from_unix(i as i64 * 60), ok);
        }
        let after = history.len() as i64;
        for k in 0..policy.recover_after {
            tracker.observe(Time::from_unix((after + k as i64) * 60), true);
        }
        prop_assert_eq!(tracker.state(), HealthState::Healthy);
        prop_assert_eq!(tracker.next_retry(), None);
        prop_assert_eq!(
            tracker.backoff_secs(),
            policy.backoff_base_secs.min(policy.backoff_max_secs)
        );
    }

    /// Splitting a subject's probe timeline at any two cut points and
    /// merging the pieces back — in either association — replays to
    /// the same report and the same event bytes as the unsplit log.
    #[test]
    fn merge_is_associative_across_arbitrary_splits(
        policy in policy_strategy(),
        outcomes in proptest::collection::vec(any::<bool>(), 0..48),
        cuts in (0usize..49, 0usize..49),
    ) {
        let cut_a = cuts.0.min(outcomes.len());
        let cut_b = cuts.1.min(outcomes.len()).max(cut_a);
        let mut whole = HealthLog::new();
        let mut parts = [HealthLog::new(), HealthLog::new(), HealthLog::new()];
        for (i, &ok) in outcomes.iter().enumerate() {
            let at = Time::from_unix(i as i64 * 60);
            whole.record("r", at, ok);
            let part = if i < cut_a {
                0
            } else if i < cut_b {
                1
            } else {
                2
            };
            parts[part].record("r", at, ok);
        }
        let [a, b, c] = parts;

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        // a ⊕ (b ⊕ c)
        let mut right_tail = b;
        right_tail.merge(c);
        let mut right = a;
        right.merge(right_tail);

        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(&right, &whole);
        let mut ev_whole = EventLog::new();
        let mut ev_left = EventLog::new();
        let mut ev_right = EventLog::new();
        let report_whole = whole.replay(&policy, &mut ev_whole);
        let report_left = left.replay(&policy, &mut ev_left);
        let report_right = right.replay(&policy, &mut ev_right);
        prop_assert_eq!(&report_left, &report_whole);
        prop_assert_eq!(&report_right, &report_whole);
        prop_assert_eq!(ev_left.to_jsonl(), ev_whole.to_jsonl());
        prop_assert_eq!(ev_right.to_jsonl(), ev_whole.to_jsonl());
    }

    /// The events artifact round-trips byte-exactly through its strict
    /// parser for any replayed timeline.
    #[test]
    fn events_jsonl_round_trips_byte_exactly(
        policy in policy_strategy(),
        outcomes in proptest::collection::vec(any::<bool>(), 0..48),
    ) {
        let mut log = HealthLog::new();
        for (i, &ok) in outcomes.iter().enumerate() {
            log.record("ocsp.example.com", Time::from_unix(i as i64 * 60), ok);
        }
        let mut events = EventLog::new();
        log.replay(&policy, &mut events);
        let text = events.to_jsonl();
        let parsed = EventLog::parse_jsonl(&text);
        prop_assert!(parsed.is_ok());
        prop_assert_eq!(parsed.unwrap().to_jsonl(), text);
    }
}
