//! The deterministic event bus: operational events on the simulated
//! clock, rendered to a depth-free `events.jsonl`.
//!
//! Events are flat records (no tree, unlike `trace.jsonl`): one JSON
//! object per line with a fixed field order —
//!
//! ```text
//! {"t":1524614400,"kind":"health","subject":"ocsp.digicert.com","detail":"healthy -> degraded"}
//! ```
//!
//! `t` is the simulated Unix timestamp, so the rendered bytes are a
//! pure function of the simulation and byte-identical for every worker
//! count, engine, and chunking — [`EventLog::to_jsonl`] sorts
//! canonically before rendering, so producers may append in any
//! deterministic order and merged logs render identically no matter
//! how the work was split. [`EventLog::parse_jsonl`] is strict for
//! exactly the subset we emit and re-serializes byte-exactly, the same
//! contract `telemetry::trace` pins for spans.
//!
//! Delivery is decoupled from collection: anything that wants to *see*
//! events implements [`Notifier`]; the offline pipelines use
//! [`EventLog`] (collect, merge, render), while the live tier wraps an
//! [`EventSink`] in a [`WebhookNotifier`] to push each event's JSON
//! line to an external receiver. The real-HTTP sink lives in `ocspd`;
//! this crate only defines the abstraction and an in-memory
//! [`BufferSink`] for tests.

use asn1::Time;
use std::fmt::Write as _;

/// What an event reports. The set is closed on purpose: the event log
/// is an artifact, and a free-form kind string would let call sites
/// fork the taxonomy silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A health-state transition (see [`crate::health`]).
    Health,
    /// A probe-failure run opening or closing against one responder.
    Outage,
    /// A certificate entering the revoked pool.
    Revocation,
    /// An OCSP production window rolling over.
    Rollover,
}

impl EventKind {
    /// The `kind` field value in the JSONL rendering.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Health => "health",
            EventKind::Outage => "outage",
            EventKind::Revocation => "revocation",
            EventKind::Rollover => "rollover",
        }
    }

    /// Inverse of [`EventKind::label`].
    pub fn parse(s: &str) -> Result<EventKind, String> {
        match s {
            "health" => Ok(EventKind::Health),
            "outage" => Ok(EventKind::Outage),
            "revocation" => Ok(EventKind::Revocation),
            "rollover" => Ok(EventKind::Rollover),
            other => Err(format!("unknown event kind `{other}`")),
        }
    }
}

/// One operational event on the simulated clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// When the event happened (simulated time).
    pub at: Time,
    /// What happened.
    pub kind: EventKind,
    /// Who it happened to (responder hostname, certificate subject, …).
    pub subject: String,
    /// Human-readable specifics (`healthy -> degraded`, `window 42`, …).
    pub detail: String,
}

impl Event {
    /// Construct an event.
    pub fn new(at: Time, kind: EventKind, subject: &str, detail: &str) -> Event {
        Event {
            at,
            kind,
            subject: subject.to_owned(),
            detail: detail.to_owned(),
        }
    }

    /// The canonical sort key: time first, then kind, subject, detail —
    /// a total order, so sorting is insertion-order independent.
    fn key(&self) -> (Time, EventKind, &str, &str) {
        (self.at, self.kind, &self.subject, &self.detail)
    }

    /// Serialize as one JSONL line (no trailing newline). This is also
    /// the webhook payload, so the wire format and the artifact format
    /// cannot drift apart.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"t\":{},\"kind\":\"{}\",\"subject\":\"{}\",\"detail\":\"{}\"}}",
            self.at.unix(),
            self.kind.label(),
            escape_json(&self.subject),
            escape_json(&self.detail),
        )
    }
}

/// A consumer of operational events.
///
/// Pipelines emit through this trait so collection (offline
/// [`EventLog`]) and delivery (live [`WebhookNotifier`]) are
/// interchangeable at the call site.
pub trait Notifier {
    /// Observe one event.
    fn notify(&mut self, event: Event);
}

/// The offline event collector: an in-memory log that merges across
/// shards/chunks and renders the `events.jsonl` artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<Event>,
}

impl Notifier for EventLog {
    fn notify(&mut self, event: Event) {
        self.events.push(event);
    }
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Append one event (equivalent to [`Notifier::notify`]).
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Absorb another log. Merging is commutative up to rendering:
    /// [`EventLog::to_jsonl`] sorts canonically, so any merge order
    /// over the same event multiset renders the same bytes.
    pub fn merge(&mut self, other: EventLog) {
        self.events.extend(other.events);
    }

    /// The events in canonical order (time, kind, subject, detail).
    pub fn sorted(&self) -> Vec<&Event> {
        let mut out: Vec<&Event> = self.events.iter().collect();
        out.sort_by_key(|e| e.key());
        out
    }

    /// Render the depth-free JSONL artifact: one event per line in
    /// canonical order. Byte-stable across worker counts, engines, and
    /// chunkings because every producer feeds the same simulated-time
    /// events regardless of how the work was split.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.sorted() {
            let _ = writeln!(out, "{}", event.to_json_line());
        }
        out
    }

    /// Parse a JSONL artifact previously produced by
    /// [`EventLog::to_jsonl`]. Strict for the subset we emit;
    /// re-serializing the result reproduces the input byte-for-byte
    /// (pinned by tests).
    pub fn parse_jsonl(text: &str) -> Result<EventLog, String> {
        let mut log = EventLog::new();
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            let event = parse_jsonl_line(line).map_err(|e| format!("line {lineno}: {e}"))?;
            log.events.push(event);
        }
        Ok(log)
    }
}

/// Where a webhook-style notifier pushes rendered events. The offline
/// tier never constructs a real sink; the live service implements this
/// over an actual TCP connection.
pub trait EventSink {
    /// Deliver one JSON-line payload; `Err` counts as a failed
    /// delivery and is absorbed by the notifier (events must never
    /// disturb the pipeline that emitted them).
    fn deliver(&mut self, payload: &str) -> Result<(), String>;
}

/// An in-memory [`EventSink`] collecting payloads, for tests and dry
/// runs.
#[derive(Debug, Clone, Default)]
pub struct BufferSink {
    /// Every payload delivered, in order.
    pub payloads: Vec<String>,
}

impl EventSink for BufferSink {
    fn deliver(&mut self, payload: &str) -> Result<(), String> {
        self.payloads.push(payload.to_owned());
        Ok(())
    }
}

/// A [`Notifier`] that forwards each event's JSON line to an
/// [`EventSink`], tallying outcomes. Delivery failures are counted,
/// never propagated — an unreachable webhook must not perturb the
/// emitting pipeline.
#[derive(Debug, Clone)]
pub struct WebhookNotifier<S: EventSink> {
    sink: S,
    delivered: u64,
    failed: u64,
}

impl<S: EventSink> WebhookNotifier<S> {
    /// Wrap a sink.
    pub fn new(sink: S) -> WebhookNotifier<S> {
        WebhookNotifier {
            sink,
            delivered: 0,
            failed: 0,
        }
    }

    /// Successful deliveries so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Failed deliveries so far.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Recover the sink (e.g. to inspect a [`BufferSink`]).
    pub fn into_sink(self) -> S {
        self.sink
    }
}

impl<S: EventSink> Notifier for WebhookNotifier<S> {
    fn notify(&mut self, event: Event) {
        match self.sink.deliver(&event.to_json_line()) {
            Ok(()) => self.delivered += 1,
            Err(_) => self.failed += 1,
        }
    }
}

/// A [`Notifier`] that discards everything, for call sites that only
/// want the health report.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullNotifier;

impl Notifier for NullNotifier {
    fn notify(&mut self, _event: Event) {}
}

/// Escape a string for a JSON string literal (control characters,
/// quotes, backslashes) — the same escaping `telemetry::trace` uses,
/// so the two JSONL artifacts share one convention.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse one serialized event line.
fn parse_jsonl_line(line: &str) -> Result<Event, String> {
    let body = line
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: `{line}`"))?;
    let mut t: Option<i64> = None;
    let mut kind: Option<EventKind> = None;
    let mut subject: Option<String> = None;
    let mut detail: Option<String> = None;
    let mut rest = body;
    while !rest.is_empty() {
        let after_key = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a key at `{rest}`"))?;
        let quote = after_key
            .find('"')
            .ok_or_else(|| format!("unterminated key at `{rest}`"))?;
        let key = &after_key[..quote];
        let after_colon = after_key[quote + 1..]
            .strip_prefix(':')
            .ok_or_else(|| format!("expected `:` after key `{key}`"))?;
        let consumed;
        match key {
            "t" => {
                let end = after_colon.find([',', '}']).unwrap_or(after_colon.len());
                let digits = &after_colon[..end];
                t = Some(
                    digits
                        .parse()
                        .map_err(|_| format!("bad integer `{digits}` for key `t`"))?,
                );
                consumed = &after_colon[end..];
            }
            "kind" => {
                let (value, tail) = parse_json_string(after_colon)?;
                kind = Some(EventKind::parse(&value)?);
                consumed = tail;
            }
            "subject" => {
                let (value, tail) = parse_json_string(after_colon)?;
                subject = Some(value);
                consumed = tail;
            }
            "detail" => {
                let (value, tail) = parse_json_string(after_colon)?;
                detail = Some(value);
                consumed = tail;
            }
            other => return Err(format!("unknown key `{other}`")),
        }
        rest = consumed.strip_prefix(',').unwrap_or(consumed);
        if consumed.is_empty() || consumed == rest {
            break;
        }
    }
    Ok(Event {
        at: Time::from_unix(t.ok_or("missing `t`")?),
        kind: kind.ok_or("missing `kind`")?,
        subject: subject.ok_or("missing `subject`")?,
        detail: detail.ok_or("missing `detail`")?,
    })
}

/// Parse a JSON string literal at the head of `s`; return the decoded
/// value and the unconsumed tail.
fn parse_json_string(s: &str) -> Result<(String, &str), String> {
    let inner = s
        .strip_prefix('"')
        .ok_or_else(|| format!("expected a string at `{s}`"))?;
    let mut out = String::new();
    let mut chars = inner.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &inner[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((j, 'u')) => {
                    let hex = inner.get(j + 1..j + 5).ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                    out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                other => {
                    return Err(format!(
                        "bad escape `\\{}`",
                        other.map(|(_, c)| c).unwrap_or(' ')
                    ))
                }
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        let t0 = Time::from_civil(2018, 4, 25, 0, 0, 0);
        log.push(Event::new(
            t0 + 7_200,
            EventKind::Outage,
            "ocsp.digicert.com",
            "open",
        ));
        log.push(Event::new(
            t0,
            EventKind::Health,
            "ocsp.digicert.com",
            "healthy -> degraded",
        ));
        log.push(Event::new(t0, EventKind::Rollover, "ocsp", "window 1"));
        log
    }

    #[test]
    fn jsonl_is_canonically_sorted() {
        let text = sample_log().to_jsonl();
        let expected = "\
{\"t\":1524614400,\"kind\":\"health\",\"subject\":\"ocsp.digicert.com\",\"detail\":\"healthy -> degraded\"}
{\"t\":1524614400,\"kind\":\"rollover\",\"subject\":\"ocsp\",\"detail\":\"window 1\"}
{\"t\":1524621600,\"kind\":\"outage\",\"subject\":\"ocsp.digicert.com\",\"detail\":\"open\"}
";
        assert_eq!(text, expected);
    }

    #[test]
    fn parse_round_trips_byte_exactly() {
        let text = sample_log().to_jsonl();
        let parsed = EventLog::parse_jsonl(&text).expect("parse own output");
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn merge_order_does_not_change_the_rendering() {
        let log = sample_log();
        let mut split_a = EventLog::new();
        let mut split_b = EventLog::new();
        for (i, event) in log.events.iter().enumerate() {
            if i % 2 == 0 {
                split_a.push(event.clone());
            } else {
                split_b.push(event.clone());
            }
        }
        let mut ab = split_a.clone();
        ab.merge(split_b.clone());
        let mut ba = split_b;
        ba.merge(split_a);
        assert_eq!(ab.to_jsonl(), log.to_jsonl());
        assert_eq!(ba.to_jsonl(), log.to_jsonl());
    }

    #[test]
    fn awkward_strings_escape_and_round_trip() {
        let mut log = EventLog::new();
        log.push(Event::new(
            Time::from_unix(7),
            EventKind::Revocation,
            "with \"quotes\" and \\slash\\",
            "tab\there\nnewline\u{1}low",
        ));
        let text = log.to_jsonl();
        assert!(text.contains("\\\"quotes\\\""));
        assert!(text.contains("\\t"));
        assert!(text.contains("\\u0001"));
        let parsed = EventLog::parse_jsonl(&text).expect("parse");
        assert_eq!(parsed.to_jsonl(), text);
        assert_eq!(parsed.events[0], log.events[0]);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(EventLog::parse_jsonl("not json\n").is_err());
        assert!(EventLog::parse_jsonl("{\"t\":1}\n").is_err()); // missing fields
        assert!(EventLog::parse_jsonl(
            "{\"t\":1,\"kind\":\"nope\",\"subject\":\"s\",\"detail\":\"d\"}\n"
        )
        .is_err());
        assert!(EventLog::parse_jsonl(
            "{\"t\":x,\"kind\":\"health\",\"subject\":\"s\",\"detail\":\"d\"}\n"
        )
        .is_err());
        assert!(EventLog::parse_jsonl(
            "{\"t\":1,\"kind\":\"health\",\"subject\":\"s\",\"detail\":\"d\",\"extra\":1}\n"
        )
        .is_err());
    }

    #[test]
    fn negative_timestamps_round_trip() {
        // Pre-epoch simulated times are legal `asn1::Time` values.
        let mut log = EventLog::new();
        log.push(Event::new(
            Time::from_unix(-61),
            EventKind::Health,
            "s",
            "d",
        ));
        let text = log.to_jsonl();
        assert!(text.contains("\"t\":-61"));
        let parsed = EventLog::parse_jsonl(&text).expect("parse");
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn webhook_notifier_tallies_and_buffers() {
        let mut notifier = WebhookNotifier::new(BufferSink::default());
        notifier.notify(Event::new(Time::from_unix(1), EventKind::Health, "s", "d"));
        assert_eq!(notifier.delivered(), 1);
        assert_eq!(notifier.failed(), 0);
        let sink = notifier.into_sink();
        assert_eq!(
            sink.payloads,
            vec!["{\"t\":1,\"kind\":\"health\",\"subject\":\"s\",\"detail\":\"d\"}".to_string()]
        );
    }

    #[test]
    fn failing_sink_is_absorbed() {
        struct Broken;
        impl EventSink for Broken {
            fn deliver(&mut self, _payload: &str) -> Result<(), String> {
                Err("unreachable".into())
            }
        }
        let mut notifier = WebhookNotifier::new(Broken);
        notifier.notify(Event::new(Time::from_unix(1), EventKind::Health, "s", "d"));
        assert_eq!(notifier.delivered(), 0);
        assert_eq!(notifier.failed(), 1);
    }
}
