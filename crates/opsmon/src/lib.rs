//! Operational monitoring over the measurement pipelines.
//!
//! The paper's core findings are *operational*: responders and web
//! servers fail in ways (outages, stale windows, broken staples) that
//! only show up when you watch them over time — §5's
//! responder-availability and §8's outage-streak analyses are exactly
//! the signals an operator would alert on. This crate turns those
//! signals into operator-facing machinery without giving up the
//! study's determinism contract:
//!
//! * [`health`] — a per-responder health-state machine (Healthy →
//!   Degraded → Failed, exponential retry backoff, recovery after K
//!   consecutive successes) driven by probe classifications in
//!   *simulated* time, plus [`HealthLog`], a mergeable accumulator in
//!   the mold of the telemetry registry: shards and chunks record
//!   outcomes independently and the merged replay is byte-stable for
//!   every worker count, engine, and chunking;
//! * [`event`] — a deterministic event bus: health transitions, outage
//!   open/close, revocation, and window-rollover events flow through
//!   the [`Notifier`] trait into a depth-free `events.jsonl` with the
//!   same byte-stability contract as `trace.jsonl`, plus a
//!   webhook-style [`EventSink`] abstraction whose real-HTTP
//!   implementation lives in the live service tier (`ocspd`).
//!
//! Everything here runs on the simulated clock ([`asn1::Time`]); only
//! the live tier ever attaches these types to a wall clock.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod health;

pub use event::{
    BufferSink, Event, EventKind, EventLog, EventSink, Notifier, NullNotifier, WebhookNotifier,
};
pub use health::{
    HealthLog, HealthPolicy, HealthReport, HealthState, HealthTracker, SubjectHealth,
};
