//! The per-responder health-state machine, in the mold of ct-scout's
//! log-health tracker but on the study's simulated clock.
//!
//! States follow the operator's intuition:
//!
//! ```text
//!            failure × degraded_after          failure × failed_after
//! Healthy ─────────────────────────▶ Degraded ─────────────────────▶ Failed
//!    ▲                                   │                              │
//!    └────────── success × recover_after ┴──────────────────────────────┘
//! ```
//!
//! While **Failed**, every further failure reschedules the retry with
//! exponential backoff (`backoff_base_secs · 2ⁿ`, clamped to
//! `backoff_max_secs`); any `recover_after` consecutive successes
//! return the responder to **Healthy** and reset the backoff.
//!
//! Determinism: the tracker consumes `(Time, bool)` observations in
//! simulated-time order, so its transition timeline is a pure function
//! of the probe outcomes — byte-stable across worker counts, engines,
//! and chunkings. [`HealthLog`] makes it *mergeable* the way the
//! telemetry registry is: shards/chunks record their slice of the
//! outcome sequence independently, [`HealthLog::merge`] concatenates
//! per-subject slices in time order (an associative operation), and
//! [`HealthLog::replay`] runs the state machine once over the stitched
//! sequence — so the health report cannot depend on how the scan was
//! split.

use crate::event::{Event, EventKind, Notifier};
use asn1::Time;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use telemetry::{catalog, Registry};

/// Where a responder sits in the health lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Probes are succeeding.
    Healthy,
    /// A failure run has started but has not yet crossed the outage
    /// threshold.
    Degraded,
    /// The failure run crossed the threshold; retries back off
    /// exponentially.
    Failed,
}

impl HealthState {
    /// Lowercase label used in events, gauges, and the health table.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Failed => "failed",
        }
    }
}

/// Thresholds and backoff shape for the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failures that demote Healthy → Degraded.
    pub degraded_after: u32,
    /// Consecutive failures that demote Degraded → Failed. Must be
    /// at least `degraded_after`.
    pub failed_after: u32,
    /// Consecutive successes (K) that restore any state → Healthy.
    pub recover_after: u32,
    /// First retry delay once Failed, in seconds.
    pub backoff_base_secs: i64,
    /// Retry-delay ceiling, in seconds.
    pub backoff_max_secs: i64,
}

impl Default for HealthPolicy {
    /// ct-scout's shape: first failure degrades, the third fails,
    /// two clean probes recover; retries back off 60 s → 2 × … → 1 h.
    fn default() -> HealthPolicy {
        HealthPolicy {
            degraded_after: 1,
            failed_after: 3,
            recover_after: 2,
            backoff_base_secs: 60,
            backoff_max_secs: 3_600,
        }
    }
}

impl HealthPolicy {
    fn validate(&self) {
        assert!(self.degraded_after >= 1, "degraded_after must be >= 1");
        assert!(
            self.failed_after >= self.degraded_after,
            "failed_after must be >= degraded_after"
        );
        assert!(self.recover_after >= 1, "recover_after must be >= 1");
        assert!(
            self.backoff_base_secs >= 1,
            "backoff_base_secs must be >= 1"
        );
        assert!(
            self.backoff_max_secs >= self.backoff_base_secs,
            "backoff_max_secs must be >= backoff_base_secs"
        );
    }
}

/// The deterministic state machine for one subject (responder).
#[derive(Debug, Clone)]
pub struct HealthTracker {
    policy: HealthPolicy,
    state: HealthState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    backoff_exponent: u32,
    next_retry: Option<Time>,
    transitions: u64,
}

impl HealthTracker {
    /// A fresh tracker starting Healthy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is internally inconsistent (thresholds of
    /// zero, ceiling below base) — policies are code-authored.
    pub fn new(policy: HealthPolicy) -> HealthTracker {
        policy.validate();
        HealthTracker {
            policy,
            state: HealthState::Healthy,
            consecutive_failures: 0,
            consecutive_successes: 0,
            backoff_exponent: 0,
            next_retry: None,
            transitions: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Length of the current failure run (0 after a success).
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Length of the current success run (0 after a failure).
    pub fn consecutive_successes(&self) -> u32 {
        self.consecutive_successes
    }

    /// The retry delay the *next* failure while Failed would schedule:
    /// `backoff_base_secs · 2^exponent`, clamped to `backoff_max_secs`.
    /// Non-decreasing over a failure run (pinned by a property test).
    pub fn backoff_secs(&self) -> i64 {
        let exp = self.backoff_exponent.min(40);
        let raw = self
            .policy
            .backoff_base_secs
            .checked_shl(exp)
            .unwrap_or(i64::MAX);
        raw.min(self.policy.backoff_max_secs)
    }

    /// When the scheduler should retry a Failed subject (None unless
    /// Failed).
    pub fn next_retry(&self) -> Option<Time> {
        self.next_retry
    }

    /// Total transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Feed one probe classification at simulated time `at`; returns
    /// the transition it caused, if any. Observations must arrive in
    /// non-decreasing time order.
    pub fn observe(&mut self, at: Time, ok: bool) -> Option<(HealthState, HealthState)> {
        let from = self.state;
        if ok {
            self.consecutive_failures = 0;
            self.consecutive_successes += 1;
            if from != HealthState::Healthy
                && self.consecutive_successes >= self.policy.recover_after
            {
                self.state = HealthState::Healthy;
                self.backoff_exponent = 0;
                self.next_retry = None;
                self.transitions += 1;
                return Some((from, HealthState::Healthy));
            }
            return None;
        }
        self.consecutive_successes = 0;
        self.consecutive_failures += 1;
        let to = if self.consecutive_failures >= self.policy.failed_after {
            HealthState::Failed
        } else if self.consecutive_failures >= self.policy.degraded_after {
            HealthState::Degraded
        } else {
            from
        };
        if to == HealthState::Failed {
            // Every failure while Failed pushes the retry further out,
            // up to the ceiling.
            self.next_retry = Some(at + self.backoff_secs());
            if self.backoff_secs() < self.policy.backoff_max_secs {
                self.backoff_exponent += 1;
            }
        }
        if to != from {
            self.state = to;
            self.transitions += 1;
            return Some((from, to));
        }
        None
    }
}

/// The mergeable accumulator: per-subject outcome slices recorded by
/// shards/chunks, stitched in time order and replayed once.
///
/// Merging is plain per-subject concatenation — associative, so any
/// split of the probe sequence into chunks merges back to the same
/// log, and [`HealthLog::replay`] therefore yields the same report and
/// event stream for every chunking (pinned by a property test and by
/// `tests/determinism.rs`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthLog {
    logs: BTreeMap<String, Vec<(Time, bool)>>,
}

impl HealthLog {
    /// An empty log.
    pub fn new() -> HealthLog {
        HealthLog::default()
    }

    /// Record one probe classification for `subject` at simulated time
    /// `at`. Within a subject, calls must arrive in non-decreasing
    /// time order (chunks already iterate rounds in order).
    pub fn record(&mut self, subject: &str, at: Time, ok: bool) {
        self.logs
            .entry(subject.to_owned())
            .or_default()
            .push((at, ok));
    }

    /// Absorb `later`, whose per-subject observations all happen at or
    /// after this log's — the same contract as the freshness
    /// accumulator's chunk-boundary stitch.
    pub fn merge(&mut self, later: HealthLog) {
        for (subject, mut slice) in later.logs {
            self.logs.entry(subject).or_default().append(&mut slice);
        }
    }

    /// Number of distinct subjects.
    pub fn subjects(&self) -> usize {
        self.logs.len()
    }

    /// Total observations across subjects.
    pub fn observations(&self) -> usize {
        self.logs.values().map(Vec::len).sum()
    }

    /// Run the state machine over every subject's stitched sequence,
    /// emitting health-transition and outage open/close events through
    /// `notifier` and returning the final [`HealthReport`].
    ///
    /// Subjects replay in lexicographic order; an [`crate::EventLog`]
    /// notifier re-sorts canonically at render time, so the emission
    /// order never shows in the artifact.
    pub fn replay(&self, policy: &HealthPolicy, notifier: &mut dyn Notifier) -> HealthReport {
        let mut subjects = Vec::with_capacity(self.logs.len());
        let mut transition_counts: BTreeMap<String, u64> = BTreeMap::new();
        for (subject, log) in &self.logs {
            let mut tracker = HealthTracker::new(*policy);
            let mut open_run: Option<(Time, u64)> = None;
            for &(at, ok) in log {
                if ok {
                    if let Some((opened, fails)) = open_run.take() {
                        notifier.notify(Event::new(
                            at,
                            EventKind::Outage,
                            subject,
                            &format!("close after {fails} failed probes (open since {opened})"),
                        ));
                    }
                } else {
                    match &mut open_run {
                        Some((_, fails)) => *fails += 1,
                        None => {
                            notifier.notify(Event::new(at, EventKind::Outage, subject, "open"));
                            open_run = Some((at, 1));
                        }
                    }
                }
                if let Some((from, to)) = tracker.observe(at, ok) {
                    *transition_counts
                        .entry(format!("{}_{}", from.label(), to.label()))
                        .or_default() += 1;
                    notifier.notify(Event::new(
                        at,
                        EventKind::Health,
                        subject,
                        &format!("{} -> {}", from.label(), to.label()),
                    ));
                }
            }
            // A trailing failure run stays open, like the hourly scan's
            // trailing outage streaks: it is reported in the final
            // state, not closed retroactively.
            subjects.push(SubjectHealth {
                subject: subject.clone(),
                state: tracker.state(),
                consecutive_failures: tracker.consecutive_failures(),
                consecutive_successes: tracker.consecutive_successes(),
                backoff_secs: tracker.backoff_secs(),
                next_retry: tracker.next_retry(),
                transitions: tracker.transitions(),
            });
        }
        HealthReport {
            subjects,
            transition_counts,
        }
    }
}

/// One subject's final position after a replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubjectHealth {
    /// The responder (or other monitored endpoint).
    pub subject: String,
    /// Final state.
    pub state: HealthState,
    /// Length of the trailing failure run.
    pub consecutive_failures: u32,
    /// Length of the trailing success run.
    pub consecutive_successes: u32,
    /// The delay the next failure would schedule (meaningful while
    /// Failed).
    pub backoff_secs: i64,
    /// Scheduled retry time, if Failed.
    pub next_retry: Option<Time>,
    /// Transitions over the subject's whole timeline.
    pub transitions: u64,
}

/// The replayed health table: final states plus transition totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Per-subject rows, sorted by subject.
    pub subjects: Vec<SubjectHealth>,
    /// `"<from>_<to>" → count` transition totals across subjects.
    pub transition_counts: BTreeMap<String, u64>,
}

impl HealthReport {
    /// Subjects currently (healthy, degraded, failed).
    pub fn state_counts(&self) -> (u64, u64, u64) {
        let mut counts = (0, 0, 0);
        for s in &self.subjects {
            match s.state {
                HealthState::Healthy => counts.0 += 1,
                HealthState::Degraded => counts.1 += 1,
                HealthState::Failed => counts.2 += 1,
            }
        }
        counts
    }

    /// Export into a registry: deterministic transition totals as
    /// `health.transitions` counters (artifact-grade, baseline-gated),
    /// instantaneous positions as `health.*` gauges (operational,
    /// excluded from artifact equality like every gauge).
    pub fn export(&self, registry: &mut Registry) {
        for (edge, n) in &self.transition_counts {
            registry.add(catalog::HEALTH_TRANSITIONS, edge, *n);
        }
        let (healthy, degraded, failed) = self.state_counts();
        registry.set_gauge(catalog::HEALTH_STATE_HEALTHY, healthy);
        registry.set_gauge(catalog::HEALTH_STATE_DEGRADED, degraded);
        registry.set_gauge(catalog::HEALTH_STATE_FAILED, failed);
        let worst_backoff = self
            .subjects
            .iter()
            .filter(|s| s.state == HealthState::Failed)
            .map(|s| s.backoff_secs.max(0) as u64)
            .max()
            .unwrap_or(0);
        registry.set_gauge(catalog::HEALTH_BACKOFF_SECS, worst_backoff);
    }

    /// Render the operator-facing health table (the live tier's
    /// `GET /health` body): one row per subject plus a summary line.
    pub fn render_table(&self) -> String {
        let (healthy, degraded, failed) = self.state_counts();
        let mut out = format!(
            "subjects={} healthy={healthy} degraded={degraded} failed={failed}\n",
            self.subjects.len()
        );
        for s in &self.subjects {
            let retry = match s.next_retry {
                Some(t) => t.to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{} {} fails={} retry={} backoff_secs={} transitions={}",
                s.subject,
                s.state.label(),
                s.consecutive_failures,
                retry,
                s.backoff_secs,
                s.transitions
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventLog;

    fn t(offset: i64) -> Time {
        Time::from_civil(2018, 4, 25, 0, 0, 0) + offset
    }

    #[test]
    fn lifecycle_walks_healthy_degraded_failed_and_back() {
        let mut tracker = HealthTracker::new(HealthPolicy::default());
        assert_eq!(tracker.state(), HealthState::Healthy);
        assert_eq!(
            tracker.observe(t(0), false),
            Some((HealthState::Healthy, HealthState::Degraded))
        );
        assert_eq!(tracker.observe(t(3_600), false), None);
        assert_eq!(
            tracker.observe(t(7_200), false),
            Some((HealthState::Degraded, HealthState::Failed))
        );
        // First retry is one backoff_base past the failing probe.
        assert_eq!(tracker.next_retry(), Some(t(7_200) + 60));
        // One success is not yet recovery (K = 2)…
        assert_eq!(tracker.observe(t(10_800), true), None);
        assert_eq!(tracker.state(), HealthState::Failed);
        // …the second is.
        assert_eq!(
            tracker.observe(t(14_400), true),
            Some((HealthState::Failed, HealthState::Healthy))
        );
        assert_eq!(tracker.next_retry(), None);
        assert_eq!(tracker.backoff_secs(), 60);
        assert_eq!(tracker.transitions(), 3);
    }

    #[test]
    fn backoff_doubles_and_clamps() {
        let mut tracker = HealthTracker::new(HealthPolicy::default());
        let mut previous = 0;
        for i in 0..12 {
            tracker.observe(t(i * 3_600), false);
            let backoff = tracker.backoff_secs();
            assert!(backoff >= previous, "backoff shrank at failure {i}");
            assert!(backoff <= 3_600);
            previous = backoff;
        }
        // 3 failures to reach Failed, then 60·2ⁿ clamps at 3 600.
        assert_eq!(tracker.backoff_secs(), 3_600);
        let retry = tracker
            .next_retry()
            .expect("failed subjects schedule retries");
        assert_eq!(retry, t(11 * 3_600) + 3_600);
    }

    #[test]
    fn degraded_recovers_without_visiting_failed() {
        let mut tracker = HealthTracker::new(HealthPolicy::default());
        tracker.observe(t(0), false);
        assert_eq!(tracker.state(), HealthState::Degraded);
        tracker.observe(t(1), true);
        assert_eq!(
            tracker.observe(t(2), true),
            Some((HealthState::Degraded, HealthState::Healthy))
        );
    }

    #[test]
    fn replay_emits_transitions_and_outage_runs() {
        let mut log = HealthLog::new();
        for (i, ok) in [true, false, false, false, true, true].iter().enumerate() {
            log.record("ocsp.example.com", t(i as i64 * 3_600), *ok);
        }
        let mut events = EventLog::new();
        let report = log.replay(&HealthPolicy::default(), &mut events);
        assert_eq!(report.subjects.len(), 1);
        assert_eq!(report.subjects[0].state, HealthState::Healthy);
        assert_eq!(report.subjects[0].transitions, 3);
        assert_eq!(
            report.transition_counts,
            BTreeMap::from([
                ("healthy_degraded".to_string(), 1),
                ("degraded_failed".to_string(), 1),
                ("failed_healthy".to_string(), 1),
            ])
        );
        let text = events.to_jsonl();
        assert!(text
            .contains("\"kind\":\"outage\",\"subject\":\"ocsp.example.com\",\"detail\":\"open\""));
        assert!(text.contains("close after 3 failed probes"));
        assert!(text.contains("healthy -> degraded"));
        assert!(text.contains("degraded -> failed"));
        assert!(text.contains("failed -> healthy"));
    }

    #[test]
    fn merge_stitches_chunk_boundaries_exactly() {
        // The same sequence replayed whole vs split mid-failure-run.
        let outcomes = [true, false, false, false, true, true, false];
        let mut whole = HealthLog::new();
        let mut first = HealthLog::new();
        let mut second = HealthLog::new();
        for (i, ok) in outcomes.iter().enumerate() {
            whole.record("r", t(i as i64), *ok);
            if i < 3 {
                first.record("r", t(i as i64), *ok);
            } else {
                second.record("r", t(i as i64), *ok);
            }
        }
        let mut merged = first;
        merged.merge(second);
        assert_eq!(merged, whole);
        let mut ev_whole = EventLog::new();
        let mut ev_merged = EventLog::new();
        let report_whole = whole.replay(&HealthPolicy::default(), &mut ev_whole);
        let report_merged = merged.replay(&HealthPolicy::default(), &mut ev_merged);
        assert_eq!(report_whole, report_merged);
        assert_eq!(ev_whole.to_jsonl(), ev_merged.to_jsonl());
    }

    #[test]
    fn export_registers_counters_and_gauges() {
        let mut log = HealthLog::new();
        for (i, ok) in [false, false, false, false].iter().enumerate() {
            log.record("down.example.com", t(i as i64 * 3_600), *ok);
        }
        log.record("up.example.com", t(0), true);
        let mut events = EventLog::new();
        let report = log.replay(&HealthPolicy::default(), &mut events);
        let mut registry = Registry::new();
        report.export(&mut registry);
        assert_eq!(
            registry.counter(catalog::HEALTH_TRANSITIONS, "healthy_degraded"),
            1
        );
        assert_eq!(
            registry.counter(catalog::HEALTH_TRANSITIONS, "degraded_failed"),
            1
        );
        assert_eq!(registry.gauge(catalog::HEALTH_STATE_HEALTHY), Some(1));
        assert_eq!(registry.gauge(catalog::HEALTH_STATE_DEGRADED), Some(0));
        assert_eq!(registry.gauge(catalog::HEALTH_STATE_FAILED), Some(1));
        // Two failures past the Failed threshold doubled the delay
        // twice: the next retry would wait 60 · 2² seconds.
        assert_eq!(registry.gauge(catalog::HEALTH_BACKOFF_SECS), Some(240));
        let table = report.render_table();
        assert!(table.starts_with("subjects=2 healthy=1 degraded=0 failed=1\n"));
        assert!(table.contains("down.example.com failed fails=4"));
        // The deterministic exposition is untouched by the gauges.
        assert!(registry.to_prometheus().contains("health_transitions"));
        assert!(!registry.to_prometheus().contains("health_state"));
    }
}
