//! OCSP (RFC 6960 subset) for the Must-Staple study.
//!
//! Three layers:
//!
//! * **Wire formats** — [`request`], [`response`], [`certid`]: real DER
//!   encode/decode of OCSPRequest, OCSPResponse/BasicOCSPResponse,
//!   CertID, CertStatus (Good/Revoked/Unknown), nonce extension, and
//!   delegated responder certificates.
//! * **Client validation** — [`validate`]: everything a careful client
//!   checks before trusting a response, classified with the paper's §5.3
//!   error taxonomy (malformed structure / serial mismatch / incorrect
//!   signature) plus the §5.4 quality checks (premature `thisUpdate`,
//!   expired `nextUpdate`, blank `nextUpdate`).
//! * **Responder engine** — [`responder`] + [`profile`]: an OCSP
//!   responder whose behavior is controlled by a [`profile::ResponderProfile`]
//!   fault model reproducing every misbehavior the paper measured in the
//!   wild: bodies of `"0"`, empty bodies, JavaScript pages, serial
//!   mismatches, corrupt signatures, superfluous certificates,
//!   multi-serial responses, blank/month-long validity, zero-margin and
//!   future `thisUpdate`, pre-generation with non-overlapping windows,
//!   and multi-instance `producedAt` regressions.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod certid;
pub mod profile;
pub mod request;
pub mod responder;
pub mod response;
pub mod validate;

pub use certid::CertId;
pub use profile::{MalformMode, ResponderProfile};
pub use request::OcspRequest;
pub use responder::Responder;
pub use response::{BasicResponse, CertStatus, OcspResponse, ResponseStatus, SingleResponse};
pub use validate::{
    validate_response, validate_response_cached, validate_response_with, ResponseError,
    SigVerifyCache, ValidatedResponse, ValidationConfig,
};
