//! The OCSP responder engine.
//!
//! A [`Responder`] answers [`OcspRequest`]s for one CA, with behavior
//! governed by a [`ResponderProfile`]. It supports direct signing (with
//! the CA key) and delegated signing (RFC 6960 §4.2.2.2, an
//! `id-kp-OCSPSigning` certificate included in the response — "OCSP
//! Signature Authority Delegation" in the paper's §2.2).

use crate::certid::CertId;
use crate::profile::{GenerationMode, MalformMode, ResponderProfile};
use crate::request::OcspRequest;
use crate::response::{CertStatus, OcspResponse, ResponseStatus, SingleResponse};
use asn1::Time;
use pki::{Certificate, CertificateAuthority, Serial};
use simcrypto::KeyPair;
use std::collections::HashMap;
use telemetry::catalog;

/// Who signs the responses.
#[derive(Debug, Clone)]
pub enum SignerRole {
    /// The CA key signs directly.
    Direct,
    /// A delegated signer certificate; included in responses so clients
    /// can verify.
    Delegated {
        /// The delegated certificate (must carry `id-kp-OCSPSigning`).
        /// Boxed: a certificate plus key dwarfs the `Direct` variant.
        cert: Box<Certificate>,
        /// Its private key.
        key: Box<KeyPair>,
    },
}

/// A cache entry for pre-generated responses: the boundary at which the
/// current window's response was generated.
#[derive(Debug, Clone)]
struct CachedWindow {
    /// Kept for observability (`Responder::window_of`).
    generated_at: Time,
}

/// Key for the signed-response cache: (serial bytes, window boundary,
/// instance index, signer-role tag). Pre-generated responders use the
/// interval boundary; on-demand responders use the request second, so a
/// cache hit can only repeat bytes that are identical by construction.
type ResponseCacheKey = (Vec<u8>, i64, usize, u8);

/// An OCSP responder bound to one CA.
#[derive(Debug, Clone)]
pub struct Responder {
    url: String,
    profile: ResponderProfile,
    signer: SignerRole,
    /// Last pre-generation boundary per serial (pre-generated mode).
    windows: HashMap<Serial, CachedWindow>,
    /// Signed responses for the healthy path. Any healthy single-serial
    /// request signs once per (serial, window, instance, role) and
    /// serves the cached bytes — matching real deployments and keeping
    /// large scan campaigns cheap. Fault profiles (malformed bodies,
    /// wrong serial, corrupted signatures) bypass the cache entirely.
    response_cache: HashMap<ResponseCacheKey, Vec<u8>>,
}

impl Responder {
    /// Create a responder signing directly with the CA key.
    pub fn new(url: &str, profile: ResponderProfile) -> Responder {
        Responder {
            url: url.to_string(),
            profile,
            signer: SignerRole::Direct,
            windows: HashMap::new(),
            response_cache: HashMap::new(),
        }
    }

    /// Create a responder with a delegated signer.
    pub fn with_delegated_signer(
        url: &str,
        profile: ResponderProfile,
        cert: Certificate,
        key: KeyPair,
    ) -> Responder {
        Responder {
            url: url.to_string(),
            profile,
            signer: SignerRole::Delegated {
                cert: Box::new(cert),
                key: Box::new(key),
            },
            windows: HashMap::new(),
            response_cache: HashMap::new(),
        }
    }

    /// The responder's URL (what certificates' AIA extensions point at).
    pub fn url(&self) -> &str {
        &self.url
    }

    /// The behavior profile.
    pub fn profile(&self) -> &ResponderProfile {
        &self.profile
    }

    /// The pre-generation boundary last used for `serial`, if any —
    /// lets the freshness analysis compare producedAt across windows.
    pub fn window_of(&self, serial: &Serial) -> Option<Time> {
        self.windows.get(serial).map(|w| w.generated_at)
    }

    /// Replace the behavior profile (used by scenario scripts that make a
    /// responder go bad mid-measurement, like the sheca.com episodes).
    pub fn set_profile(&mut self, profile: ResponderProfile) {
        self.profile = profile;
        self.response_cache.clear();
    }

    /// Handle raw request bytes, producing raw response bytes — exactly
    /// what travels over HTTP POST.
    pub fn handle_bytes(&mut self, ca: &CertificateAuthority, body: &[u8], now: Time) -> Vec<u8> {
        self.handle_bytes_with(ca, body, now, &mut telemetry::Registry::new())
    }

    /// [`Responder::handle_bytes`] plus telemetry: fault-profile triggers
    /// are counted into `reg` under `ocsp.responder.fault`.
    pub fn handle_bytes_with(
        &mut self,
        ca: &CertificateAuthority,
        body: &[u8],
        now: Time,
        reg: &mut telemetry::Registry,
    ) -> Vec<u8> {
        match OcspRequest::from_der(body) {
            Ok(req) => self.handle_with(ca, &req, now, reg),
            Err(_) => {
                reg.incr(catalog::OCSP_RESPONDER_FAULT, "malformed_request");
                OcspResponse::error(ResponseStatus::MalformedRequest).to_der()
            }
        }
    }

    /// Handle a parsed request.
    pub fn handle(&mut self, ca: &CertificateAuthority, req: &OcspRequest, now: Time) -> Vec<u8> {
        self.handle_with(ca, req, now, &mut telemetry::Registry::new())
    }

    /// [`Responder::handle`] plus telemetry: each fault-profile trigger
    /// (malformed body, wrong serial, corrupted signature, fillers, …)
    /// increments `ocsp.responder.fault` in `reg`, and the healthy-path
    /// signed-response cache records under `ocsp.responder.cache`:
    /// `hit` (cached bytes served), `miss` (an on-demand request-path
    /// sign), and `window_sign` (a pre-generated window materialized on
    /// first touch — scheduled signing in real deployments, so not a
    /// request-path miss).
    pub fn handle_with(
        &mut self,
        ca: &CertificateAuthority,
        req: &OcspRequest,
        now: Time,
        reg: &mut telemetry::Registry,
    ) -> Vec<u8> {
        // Body-level mangling happens regardless of the request.
        match self.profile.malform {
            MalformMode::LiteralZero => {
                reg.incr(catalog::OCSP_RESPONDER_FAULT, "malformed.literal_zero");
                return b"0".to_vec();
            }
            MalformMode::Empty => {
                reg.incr(catalog::OCSP_RESPONDER_FAULT, "malformed.empty");
                return Vec::new();
            }
            MalformMode::JavascriptPage => {
                reg.incr(catalog::OCSP_RESPONDER_FAULT, "malformed.javascript");
                return b"<html><body><script>window.location='/status';</script></body></html>"
                    .to_vec();
            }
            MalformMode::Valid | MalformMode::TruncatedDer => {}
        }

        if req.cert_ids.is_empty() {
            reg.incr(catalog::OCSP_RESPONDER_FAULT, "malformed_request");
            return OcspResponse::error(ResponseStatus::MalformedRequest).to_der();
        }

        // Refuse questions about certificates from other issuers.
        let issuer_cert = ca.certificate();
        if !req.cert_ids.iter().any(|id| id.matches_issuer(issuer_cert)) {
            reg.incr(catalog::OCSP_RESPONDER_FAULT, "unauthorized");
            return OcspResponse::error(ResponseStatus::Unauthorized).to_der();
        }

        // Work out which load-balanced instance serves this request.
        // Selection is a deterministic hash of (time, first serial): over
        // a scan campaign this behaves like the random instance placement
        // of a real load balancer, producing the paper's "producedAt goes
        // backwards every 3-4 scans" artifact when instances have skewed
        // clocks (footnote 17).
        let instance = {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in req.cert_ids[0]
                .serial
                .bytes()
                .iter()
                .chain(now.unix().to_be_bytes().iter())
            {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            (h % self.profile.instance_skews.len() as u64) as usize
        };
        let skew = self.profile.instance_skews[instance];

        // Healthy-path single-serial requests are served from the
        // signed-response cache: the response bytes are a pure function
        // of (serial, window boundary, instance, signer role). Fault
        // profiles never reach the cache, so their bytes are always
        // regenerated and cached healthy bytes cannot leak into them.
        let healthy = self.profile.malform == MalformMode::Valid
            && !self.profile.wrong_serial
            && !self.profile.corrupt_signature
            && req.cert_ids.len() == 1;
        let cache_key = if healthy {
            let (boundary, pre_generated) = match self.profile.generation {
                GenerationMode::OnDemand => (now.unix(), false),
                GenerationMode::PreGenerated { interval } => {
                    (now.unix() - now.unix().rem_euclid(interval), true)
                }
            };
            let role = match &self.signer {
                SignerRole::Direct => 0u8,
                SignerRole::Delegated { .. } => 1u8,
            };
            let key = (
                req.cert_ids[0].serial.bytes().to_vec(),
                boundary,
                instance,
                role,
            );
            if let Some(bytes) = self.response_cache.get(&key) {
                reg.incr(catalog::OCSP_RESPONDER_CACHE, "hit");
                if pre_generated {
                    self.windows.insert(
                        req.cert_ids[0].serial.clone(),
                        CachedWindow {
                            generated_at: Time::from_unix(boundary),
                        },
                    );
                }
                return bytes.clone();
            }
            Some((key, pre_generated))
        } else {
            None
        };

        let generated_at = match self.profile.generation {
            GenerationMode::OnDemand => now,
            GenerationMode::PreGenerated { interval } => {
                // Responses are refreshed on interval boundaries; every
                // request within a window sees the same times.
                let boundary = Time::from_unix(now.unix() - now.unix().rem_euclid(interval));
                for id in &req.cert_ids {
                    self.windows.insert(
                        id.serial.clone(),
                        CachedWindow {
                            generated_at: boundary,
                        },
                    );
                }
                boundary
            }
        };
        let produced_at = generated_at + skew;
        let this_update = generated_at - self.profile.this_update_margin;
        let next_update = self.profile.validity_secs.map(|v| this_update + v);

        let mut singles = Vec::new();
        for id in &req.cert_ids {
            let mut answered_id = id.clone();
            if self.profile.wrong_serial {
                // Answer about a different serial — §5.3's second error
                // class. Perturb deterministically.
                reg.incr(catalog::OCSP_RESPONDER_FAULT, "wrong_serial");
                let mut bytes = id.serial.bytes().to_vec();
                let last = bytes.len() - 1;
                bytes[last] ^= 0x01;
                answered_id.serial = Serial::from_bytes(&bytes);
            }
            singles.push(SingleResponse {
                cert_id: answered_id,
                status: self.status_for(ca, &id.serial),
                this_update,
                next_update,
            });
        }

        // Unsolicited extras (Figure 7).
        if self.profile.extra_serials > 0 {
            reg.add(
                catalog::OCSP_RESPONDER_FAULT,
                "extra_serials",
                self.profile.extra_serials as u64,
            );
        }
        for i in 0..self.profile.extra_serials {
            let filler = Serial::from_u64(0xF00D_0000 + i as u64);
            singles.push(SingleResponse {
                cert_id: CertId {
                    issuer_name_hash: issuer_cert.subject().hash(),
                    issuer_key_hash: issuer_cert.public_key().key_id(),
                    serial: filler,
                },
                status: CertStatus::Good,
                this_update,
                next_update,
            });
        }

        // Certificates riding along (Figure 6): the delegated signer if
        // any, plus superfluous chain copies.
        let mut certs = Vec::new();
        let signing_key = match &self.signer {
            SignerRole::Direct => ca.keypair().clone(),
            SignerRole::Delegated { cert, key } => {
                certs.push((**cert).clone());
                (**key).clone()
            }
        };
        if self.profile.superfluous_certs > 0 {
            reg.add(
                catalog::OCSP_RESPONDER_FAULT,
                "superfluous_certs",
                self.profile.superfluous_certs as u64,
            );
        }
        for _ in 0..self.profile.superfluous_certs {
            certs.push(issuer_cert.clone());
        }

        let mut response = OcspResponse::successful(&signing_key, produced_at, singles, certs);

        if self.profile.corrupt_signature {
            reg.incr(catalog::OCSP_RESPONDER_FAULT, "corrupt_signature");
            if let Some(basic) = &mut response.basic {
                basic.signature[0] ^= 0xff;
            }
        }

        let mut der = response.to_der();
        if self.profile.malform == MalformMode::TruncatedDer {
            reg.incr(catalog::OCSP_RESPONDER_FAULT, "malformed.truncated_der");
            der.truncate(der.len() / 2);
        }
        if let Some((key, pre_generated)) = cache_key {
            // A pre-generating responder materializes its window on
            // first touch — the request-path stand-in for the scheduled
            // signing real deployments do off-path (§5.4) — while an
            // on-demand responder signs in the request path proper, so
            // only the latter counts as a cache miss.
            reg.incr(
                catalog::OCSP_RESPONDER_CACHE,
                if pre_generated { "window_sign" } else { "miss" },
            );
            self.response_cache.insert(key, der.clone());
        }
        der
    }

    /// The status of one serial according to the CA's *OCSP view*.
    fn status_for(&self, ca: &CertificateAuthority, serial: &Serial) -> CertStatus {
        if let Some(record) = ca.ocsp_revocation(serial) {
            return CertStatus::Revoked {
                time: record.time,
                reason: record.reason,
            };
        }
        if ca.ocsp_knows(serial) {
            CertStatus::Good
        } else {
            CertStatus::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::BasicResponse;
    use pki::{IssueParams, RevocationReason};
    use rand::{rngs::StdRng, SeedableRng};

    fn now() -> Time {
        Time::from_civil(2018, 5, 1, 10, 30, 0)
    }

    /// Parse response bytes that are well-formed by fixture invariant.
    fn parse(der: &[u8]) -> OcspResponse {
        OcspResponse::from_der(der).expect("fixture responder must emit well-formed DER")
    }

    /// The basic payload of a response that is successful by fixture
    /// invariant.
    fn basic_of(resp: OcspResponse) -> BasicResponse {
        resp.basic
            .expect("successful fixture response must carry a basic payload")
    }

    struct Fixture {
        ca: CertificateAuthority,
        leaf: Certificate,
        id: CertId,
    }

    fn fixture(seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ca = CertificateAuthority::new_root(&mut rng, "CA", "Root", "ca.test", now());
        let leaf = ca.issue(&mut rng, &IssueParams::new("site.example", now()));
        let id = CertId::for_certificate(&leaf, ca.certificate());
        Fixture { ca, leaf, id }
    }

    fn respond(f: &Fixture, profile: ResponderProfile) -> OcspResponse {
        let mut responder = Responder::new("http://ocsp.ca.test/", profile);
        let req = OcspRequest::single(f.id.clone());
        let der = responder.handle(&f.ca, &req, now());
        parse(&der)
    }

    #[test]
    fn healthy_good_response() {
        let f = fixture(1);
        let resp = respond(&f, ResponderProfile::healthy());
        assert_eq!(resp.status, ResponseStatus::Successful);
        let basic = basic_of(resp);
        assert!(basic.verify_signature(f.ca.certificate().public_key()));
        assert_eq!(basic.responses.len(), 1);
        assert_eq!(basic.responses[0].status, CertStatus::Good);
        assert_eq!(basic.responses[0].cert_id, f.id);
        // Margin: thisUpdate backdated one hour.
        assert_eq!(now() - basic.responses[0].this_update, 3_600);
        let next = basic.responses[0]
            .next_update
            .expect("healthy profile must populate nextUpdate");
        assert_eq!(next - basic.responses[0].this_update, 7 * 86_400);
        let _ = f.leaf;
    }

    #[test]
    fn revoked_serial_reported() {
        let mut f = fixture(2);
        f.ca.revoke(
            f.leaf.serial(),
            now() - 100,
            Some(RevocationReason::KeyCompromise),
        );
        let resp = respond(&f, ResponderProfile::healthy());
        let basic = basic_of(resp);
        assert_eq!(
            basic.responses[0].status,
            CertStatus::Revoked {
                time: now() - 100,
                reason: Some(RevocationReason::KeyCompromise)
            }
        );
    }

    #[test]
    fn unknown_serial_reported() {
        let f = fixture(3);
        let mut foreign = f.id.clone();
        foreign.serial = Serial::from_u64(0xdeadbeef);
        let mut responder = Responder::new("http://ocsp.ca.test/", ResponderProfile::healthy());
        let der = responder.handle(&f.ca, &OcspRequest::single(foreign), now());
        let resp = parse(&der);
        assert_eq!(basic_of(resp).responses[0].status, CertStatus::Unknown);
    }

    #[test]
    fn foreign_issuer_unauthorized() {
        let f = fixture(4);
        let foreign = CertId {
            issuer_name_hash: [9; 32],
            issuer_key_hash: [8; 32],
            serial: Serial::from_u64(1),
        };
        let mut responder = Responder::new("http://ocsp.ca.test/", ResponderProfile::healthy());
        let der = responder.handle(&f.ca, &OcspRequest::single(foreign), now());
        let resp = parse(&der);
        assert_eq!(resp.status, ResponseStatus::Unauthorized);
        assert!(resp.basic.is_none());
    }

    #[test]
    fn malformed_modes_produce_unparseable_bodies() {
        let f = fixture(5);
        type BodyCheck = fn(&[u8]) -> bool;
        let cases: Vec<(MalformMode, BodyCheck)> = vec![
            (MalformMode::LiteralZero, |b| b == b"0"),
            (MalformMode::Empty, |b| b.is_empty()),
            (MalformMode::JavascriptPage, |b| b.starts_with(b"<html>")),
            (MalformMode::TruncatedDer, |b| !b.is_empty()),
        ];
        for (mode, check) in cases {
            let mut responder = Responder::new("u", ResponderProfile::healthy().malformed(mode));
            let der = responder.handle(&f.ca, &OcspRequest::single(f.id.clone()), now());
            assert!(check(&der), "{mode:?}");
            assert!(
                OcspResponse::from_der(&der).is_err(),
                "{mode:?} should be unparseable"
            );
        }
    }

    #[test]
    fn wrong_serial_mode_mismatches() {
        let f = fixture(6);
        let resp = respond(&f, ResponderProfile::healthy().wrong_serial());
        let basic = basic_of(resp);
        assert_ne!(basic.responses[0].cert_id.serial, f.id.serial);
    }

    #[test]
    fn corrupt_signature_mode_fails_verification() {
        let f = fixture(7);
        let resp = respond(&f, ResponderProfile::healthy().corrupt_signature());
        let basic = basic_of(resp);
        assert!(!basic.verify_signature(f.ca.certificate().public_key()));
    }

    #[test]
    fn superfluous_certs_and_extra_serials() {
        let f = fixture(8);
        let resp = respond(
            &f,
            ResponderProfile::healthy()
                .superfluous_certs(4)
                .extra_serials(19),
        );
        let basic = basic_of(resp);
        assert_eq!(basic.certs.len(), 4);
        assert_eq!(basic.responses.len(), 20);
        // The first entry is the one actually asked about.
        assert_eq!(basic.responses[0].cert_id.serial, f.id.serial);
    }

    #[test]
    fn blank_next_update() {
        let f = fixture(9);
        let resp = respond(&f, ResponderProfile::healthy().blank_next_update());
        assert_eq!(basic_of(resp).responses[0].next_update, None);
    }

    #[test]
    fn zero_margin_and_future_this_update() {
        let f = fixture(10);
        let zero = respond(&f, ResponderProfile::healthy().margin(0));
        assert_eq!(basic_of(zero).responses[0].this_update, now());
        let future = respond(&f, ResponderProfile::healthy().margin(-120));
        assert_eq!(basic_of(future).responses[0].this_update, now() + 120);
    }

    #[test]
    fn pre_generated_windows_are_stable_within_interval() {
        let f = fixture(11);
        let mut responder = Responder::new(
            "u",
            ResponderProfile::healthy()
                .pre_generated(7_200)
                .validity(7_200),
        );
        let req = OcspRequest::single(f.id.clone());
        let r1 = parse(&responder.handle(&f.ca, &req, now()));
        let r2 = parse(&responder.handle(&f.ca, &req, now() + 600));
        let r3 = parse(&responder.handle(&f.ca, &req, now() + 7_200));
        let t1 = basic_of(r1).responses[0].this_update;
        let t2 = basic_of(r2).responses[0].this_update;
        let t3 = basic_of(r3).responses[0].this_update;
        assert_eq!(t1, t2);
        assert!(t3 > t1);
    }

    #[test]
    fn instance_skew_regresses_produced_at() {
        let f = fixture(12);
        // Two instances, one 5 minutes behind: across a series of scans
        // producedAt must go backwards at least once — the footnote 17
        // artifact. Instance choice is a deterministic hash of
        // (serial, time), so probe enough scans that a balanced hash is
        // guaranteed to alternate at least once.
        let mut responder =
            Responder::new("u", ResponderProfile::healthy().instances(vec![0, -300]));
        let req = OcspRequest::single(f.id.clone());
        let mut produced = Vec::new();
        for k in 0..48 {
            let body = responder.handle(&f.ca, &req, now() + k * 10);
            produced.push(basic_of(parse(&body)).produced_at);
        }
        assert!(
            produced.windows(2).any(|w| w[1] < w[0]),
            "producedAt never regressed: {produced:?}"
        );
    }

    #[test]
    fn delegated_signer_included_and_verifies() {
        let mut f = fixture(13);
        let mut rng = StdRng::seed_from_u64(99);
        let (cert, key) = f.ca.issue_ocsp_signer(&mut rng, now());
        let mut responder =
            Responder::with_delegated_signer("u", ResponderProfile::healthy(), cert.clone(), key);
        let der = responder.handle(&f.ca, &OcspRequest::single(f.id.clone()), now());
        let basic = basic_of(parse(&der));
        // Signed by the delegate, not the CA.
        assert!(!basic.verify_signature(f.ca.certificate().public_key()));
        assert!(basic.verify_signature(cert.public_key()));
        assert_eq!(basic.certs[0], cert);
    }

    #[test]
    fn fault_profile_triggers_are_counted() {
        let f = fixture(15);
        let mut reg = telemetry::Registry::new();
        let req = OcspRequest::single(f.id.clone());

        let mut responder = Responder::new(
            "u",
            ResponderProfile::healthy()
                .wrong_serial()
                .corrupt_signature()
                .extra_serials(3)
                .superfluous_certs(2),
        );
        responder.handle_with(&f.ca, &req, now(), &mut reg);
        assert_eq!(reg.counter("ocsp.responder.fault", "wrong_serial"), 1);
        assert_eq!(reg.counter("ocsp.responder.fault", "corrupt_signature"), 1);
        assert_eq!(reg.counter("ocsp.responder.fault", "extra_serials"), 3);
        assert_eq!(reg.counter("ocsp.responder.fault", "superfluous_certs"), 2);

        let mut malformed = Responder::new(
            "u",
            ResponderProfile::healthy().malformed(MalformMode::Empty),
        );
        malformed.handle_with(&f.ca, &req, now(), &mut reg);
        assert_eq!(reg.counter("ocsp.responder.fault", "malformed.empty"), 1);

        let mut garbage = Responder::new("u", ResponderProfile::healthy());
        garbage.handle_bytes_with(&f.ca, b"junk", now(), &mut reg);
        assert_eq!(reg.counter("ocsp.responder.fault", "malformed_request"), 1);
    }

    #[test]
    fn pregen_cache_hits_and_window_signs_are_counted() {
        let f = fixture(16);
        let mut reg = telemetry::Registry::new();
        let req = OcspRequest::single(f.id.clone());
        let mut responder = Responder::new(
            "u",
            ResponderProfile::healthy()
                .pre_generated(7_200)
                .validity(7_200),
        );
        responder.handle_with(&f.ca, &req, now(), &mut reg);
        responder.handle_with(&f.ca, &req, now() + 600, &mut reg);
        responder.handle_with(&f.ca, &req, now() + 900, &mut reg);
        // Window materialization is not a request-path miss.
        assert_eq!(reg.counter("ocsp.responder.cache", "window_sign"), 1);
        assert_eq!(reg.counter("ocsp.responder.cache", "hit"), 2);
        assert_eq!(reg.counter("ocsp.responder.cache", "miss"), 0);
    }

    #[test]
    fn on_demand_cache_repeats_identical_bytes_within_a_second() {
        let f = fixture(17);
        let mut reg = telemetry::Registry::new();
        let req = OcspRequest::single(f.id.clone());
        let mut responder = Responder::new("u", ResponderProfile::healthy());
        let first = responder.handle_with(&f.ca, &req, now(), &mut reg);
        let second = responder.handle_with(&f.ca, &req, now(), &mut reg);
        assert_eq!(first, second);
        assert_eq!(reg.counter("ocsp.responder.cache", "miss"), 1);
        assert_eq!(reg.counter("ocsp.responder.cache", "hit"), 1);
        // A later request second is a distinct key: fresh sign.
        responder.handle_with(&f.ca, &req, now() + 1, &mut reg);
        assert_eq!(reg.counter("ocsp.responder.cache", "miss"), 2);
        // And the cached bytes are exactly what a cold responder signs.
        let mut cold = Responder::new("u", ResponderProfile::healthy());
        assert_eq!(cold.handle(&f.ca, &req, now()), second);
    }

    #[test]
    fn fault_profiles_never_touch_the_cache() {
        let f = fixture(18);
        let req = OcspRequest::single(f.id.clone());
        let faults = vec![
            ResponderProfile::healthy().wrong_serial(),
            ResponderProfile::healthy().corrupt_signature(),
            ResponderProfile::healthy().malformed(MalformMode::TruncatedDer),
            ResponderProfile::healthy().malformed(MalformMode::LiteralZero),
            ResponderProfile::healthy()
                .pre_generated(7_200)
                .corrupt_signature(),
        ];
        for profile in faults {
            let mut reg = telemetry::Registry::new();
            let mut responder = Responder::new("u", profile.clone());
            responder.handle_with(&f.ca, &req, now(), &mut reg);
            responder.handle_with(&f.ca, &req, now(), &mut reg);
            assert_eq!(
                reg.counter_total("ocsp.responder.cache"),
                0,
                "fault profile reached the cache: {profile:?}"
            );
        }
        // Multi-serial requests are also uncached.
        let mut reg = telemetry::Registry::new();
        let mut responder = Responder::new("u", ResponderProfile::healthy());
        let multi = OcspRequest {
            cert_ids: vec![f.id.clone(), f.id.clone()],
            nonce: None,
        };
        responder.handle_with(&f.ca, &multi, now(), &mut reg);
        assert_eq!(reg.counter_total("ocsp.responder.cache"), 0);
    }

    #[test]
    fn window_rollover_invalidates_the_cache_entry() {
        let f = fixture(19);
        let mut reg = telemetry::Registry::new();
        let req = OcspRequest::single(f.id.clone());
        let mut responder = Responder::new(
            "u",
            ResponderProfile::healthy()
                .pre_generated(7_200)
                .validity(7_200),
        );
        let before = responder.handle_with(&f.ca, &req, now(), &mut reg);
        let after = responder.handle_with(&f.ca, &req, now() + 7_200, &mut reg);
        assert_ne!(before, after, "rollover must produce fresh bytes");
        let t_before = basic_of(parse(&before)).responses[0].this_update;
        let t_after = basic_of(parse(&after)).responses[0].this_update;
        assert!(t_after > t_before);
        assert_eq!(reg.counter("ocsp.responder.cache", "window_sign"), 2);
        assert_eq!(reg.counter("ocsp.responder.cache", "hit"), 0);
    }

    #[test]
    fn profile_swap_clears_cached_bytes() {
        // The sheca-style episode scripts swap profiles mid-campaign; a
        // healthy response cached before the swap must not survive it.
        let f = fixture(20);
        let req = OcspRequest::single(f.id.clone());
        let mut responder = Responder::new(
            "u",
            ResponderProfile::healthy()
                .pre_generated(7_200)
                .validity(7_200),
        );
        let healthy = responder.handle(&f.ca, &req, now());
        responder.set_profile(
            ResponderProfile::healthy()
                .pre_generated(7_200)
                .validity(7_200)
                .malformed(MalformMode::Empty),
        );
        assert!(responder.handle(&f.ca, &req, now()).is_empty());
        responder.set_profile(
            ResponderProfile::healthy()
                .pre_generated(7_200)
                .validity(7_200),
        );
        // Recovery re-signs (deterministically identical bytes) rather
        // than serving a stale pre-episode entry.
        let mut reg = telemetry::Registry::new();
        let again = responder.handle_with(&f.ca, &req, now(), &mut reg);
        assert_eq!(again, healthy);
        assert_eq!(reg.counter("ocsp.responder.cache", "window_sign"), 1);
    }

    #[test]
    fn garbage_request_gets_malformed_request() {
        let f = fixture(14);
        let mut responder = Responder::new("u", ResponderProfile::healthy());
        let der = responder.handle_bytes(&f.ca, b"not a request", now());
        let resp = parse(&der);
        assert_eq!(resp.status, ResponseStatus::MalformedRequest);
    }
}
