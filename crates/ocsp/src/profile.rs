//! The responder fault model.
//!
//! [`ResponderProfile`] captures every quality defect §5 of the paper
//! measured in deployed OCSP responders, as orthogonal knobs. A default
//! profile is a well-behaved responder; each knob reproduces one observed
//! misbehavior, and the ecosystem generator draws knob values from the
//! paper's measured marginal distributions.

/// How (whether) the responder mangles the bytes it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MalformMode {
    /// Well-formed DER (the default).
    #[default]
    Valid,
    /// The literal body `"0"` — observed from `*.sheca.com` (6 responders)
    /// and `postsignum.cz` (3 responders).
    LiteralZero,
    /// A zero-byte body.
    Empty,
    /// An HTML/JavaScript page instead of DER.
    JavascriptPage,
    /// Valid DER truncated mid-TLV.
    TruncatedDer,
}

/// When responses are generated relative to requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenerationMode {
    /// Generate a fresh response per request (48.3 % of responders).
    OnDemand,
    /// Pre-generate on a fixed cadence and serve the cached response
    /// until the next refresh (51.7 % of responders). The paper flags
    /// responders whose `interval` equals their validity period: clients
    /// can then never fetch an *overlappingly* fresh response (hinet.net
    /// at 7 200 s, cnnic.cn at 10 800 s).
    PreGenerated {
        /// Seconds between refreshes.
        interval: i64,
    },
}

/// A complete description of one responder's behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponderProfile {
    /// Validity period in seconds (`nextUpdate - thisUpdate`). `None`
    /// means a *blank* `nextUpdate` (9.1 % of responders) — the response
    /// never expires. The paper's Figure 8 tail reaches 108 130 800 s
    /// (1 251 days).
    pub validity_secs: Option<i64>,
    /// Margin subtracted from the generation time to produce
    /// `thisUpdate`. `0` reproduces the 17.2 % of responders whose
    /// responses become valid at the instant they are served (Figure 9);
    /// a *negative* margin produces the 3 % with future `thisUpdate`
    /// values, which slow-clocked clients reject.
    pub this_update_margin: i64,
    /// On-demand vs pre-generated responses (§5.4 freshness study).
    pub generation: GenerationMode,
    /// Number of extra certificates stuffed into the response beyond the
    /// delegated-signer certificate (Figure 6: 14.5 % of responders send
    /// more than one; `ocsp.cpc.gov.ae` sends four full chains).
    pub superfluous_certs: usize,
    /// Number of unsolicited serials added to each response (Figure 7:
    /// 4.8 % of responders; 3.3 % always send 20).
    pub extra_serials: usize,
    /// Body mangling.
    pub malform: MalformMode,
    /// Answer with a mismatched serial number (§5.3 error class 2).
    pub wrong_serial: bool,
    /// Corrupt the signature (§5.3 error class 3).
    pub corrupt_signature: bool,
    /// Per-instance `producedAt` clock skews, in seconds. Responders that
    /// round-robin requests across instances with skewed clocks produce
    /// the "producedAt goes backwards every 3–4 scans" artifact the paper
    /// observed (§5.4, footnote 17).
    pub instance_skews: Vec<i64>,
}

impl Default for ResponderProfile {
    fn default() -> Self {
        ResponderProfile {
            // The paper: median validity period is about a week.
            validity_secs: Some(7 * 86_400),
            // A healthy responder backdates thisUpdate a bit so clients
            // with slightly slow clocks still accept the response.
            this_update_margin: 3_600,
            generation: GenerationMode::OnDemand,
            superfluous_certs: 0,
            extra_serials: 0,
            malform: MalformMode::Valid,
            wrong_serial: false,
            corrupt_signature: false,
            instance_skews: vec![0],
        }
    }
}

impl ResponderProfile {
    /// A fully well-behaved responder.
    pub fn healthy() -> ResponderProfile {
        ResponderProfile::default()
    }

    /// Builder: set the validity period (seconds).
    pub fn validity(mut self, secs: i64) -> ResponderProfile {
        self.validity_secs = Some(secs);
        self
    }

    /// Builder: blank `nextUpdate`.
    pub fn blank_next_update(mut self) -> ResponderProfile {
        self.validity_secs = None;
        self
    }

    /// Builder: set the `thisUpdate` margin (0 = zero margin; negative =
    /// future-dated).
    pub fn margin(mut self, secs: i64) -> ResponderProfile {
        self.this_update_margin = secs;
        self
    }

    /// Builder: pre-generated responses every `interval` seconds.
    pub fn pre_generated(mut self, interval: i64) -> ResponderProfile {
        self.generation = GenerationMode::PreGenerated { interval };
        self
    }

    /// Builder: stuff `n` superfluous certificates into each response.
    pub fn superfluous_certs(mut self, n: usize) -> ResponderProfile {
        self.superfluous_certs = n;
        self
    }

    /// Builder: add `n` unsolicited serials to each response.
    pub fn extra_serials(mut self, n: usize) -> ResponderProfile {
        self.extra_serials = n;
        self
    }

    /// Builder: mangle the body.
    pub fn malformed(mut self, mode: MalformMode) -> ResponderProfile {
        self.malform = mode;
        self
    }

    /// Builder: answer with a mismatched serial.
    pub fn wrong_serial(mut self) -> ResponderProfile {
        self.wrong_serial = true;
        self
    }

    /// Builder: corrupt signatures.
    pub fn corrupt_signature(mut self) -> ResponderProfile {
        self.corrupt_signature = true;
        self
    }

    /// Builder: multi-instance clock skews.
    pub fn instances(mut self, skews: Vec<i64>) -> ResponderProfile {
        assert!(!skews.is_empty(), "need at least one instance");
        self.instance_skews = skews;
        self
    }

    /// Whether the validity window never overlaps a fresh successor:
    /// `validity <= refresh interval` on a pre-generated responder (the
    /// §5.4 non-overlap hazard; 7 responders in the paper).
    pub fn has_non_overlapping_windows(&self) -> bool {
        match (self.generation, self.validity_secs) {
            (GenerationMode::PreGenerated { interval }, Some(validity)) => validity <= interval,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_healthy() {
        let p = ResponderProfile::default();
        assert_eq!(p.malform, MalformMode::Valid);
        assert!(!p.wrong_serial);
        assert!(!p.corrupt_signature);
        assert!(p.validity_secs.is_some());
        assert!(p.this_update_margin > 0);
        assert!(!p.has_non_overlapping_windows());
    }

    #[test]
    fn builder_chains() {
        let p = ResponderProfile::healthy()
            .validity(7_200)
            .margin(0)
            .pre_generated(7_200)
            .superfluous_certs(3)
            .extra_serials(19);
        assert_eq!(p.validity_secs, Some(7_200));
        assert_eq!(p.this_update_margin, 0);
        assert_eq!(p.superfluous_certs, 3);
        assert_eq!(p.extra_serials, 19);
        // hinet.net shape: validity == refresh interval.
        assert!(p.has_non_overlapping_windows());
    }

    #[test]
    fn blank_next_update_never_non_overlapping() {
        let p = ResponderProfile::healthy()
            .blank_next_update()
            .pre_generated(3_600);
        assert!(!p.has_non_overlapping_windows());
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_instances_rejected() {
        ResponderProfile::healthy().instances(vec![]);
    }
}
