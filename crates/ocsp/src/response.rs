//! OCSP responses (RFC 6960 §4.2.1).
//!
//! ```text
//! OCSPResponse ::= SEQUENCE {
//!    responseStatus  OCSPResponseStatus,
//!    responseBytes   [0] EXPLICIT ResponseBytes OPTIONAL }
//! ResponseBytes ::= SEQUENCE { responseType OID, response OCTET STRING }
//! BasicOCSPResponse ::= SEQUENCE {
//!    tbsResponseData ResponseData,
//!    signatureAlgorithm AlgorithmIdentifier,
//!    signature BIT STRING,
//!    certs [0] EXPLICIT SEQUENCE OF Certificate OPTIONAL }
//! ResponseData ::= SEQUENCE {
//!    responderID CHOICE { byName [1], byKey [2] },
//!    producedAt GeneralizedTime,
//!    responses SEQUENCE OF SingleResponse }
//! SingleResponse ::= SEQUENCE {
//!    certID CertID,
//!    certStatus CHOICE { good [0] NULL, revoked [1] RevokedInfo,
//!                        unknown [2] NULL },
//!    thisUpdate GeneralizedTime,
//!    nextUpdate [0] EXPLICIT GeneralizedTime OPTIONAL }
//! ```
//!
//! Every field the paper measures is here: `producedAt` (freshness study,
//! §5.4), `thisUpdate`/`nextUpdate` (validity-period CDF, Figures 8–9; a
//! *blank* `nextUpdate` means "newer information is always available"),
//! the `certs` list (superfluous-certificate CDF, Figure 6), and multiple
//! `SingleResponse`s (multi-serial CDF, Figure 7).

use crate::certid::CertId;
use asn1::{Decoder, Encoder, Error, Oid, Result, Tag, Time};
use pki::{Certificate, RevocationReason};
use simcrypto::KeyPair;

/// The outer OCSPResponseStatus (RFC 6960 §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseStatus {
    /// successful (0)
    Successful,
    /// malformedRequest (1)
    MalformedRequest,
    /// internalError (2)
    InternalError,
    /// tryLater (3) — the error §7.2's availability experiment feeds to
    /// web servers.
    TryLater,
    /// sigRequired (5)
    SigRequired,
    /// unauthorized (6)
    Unauthorized,
}

impl ResponseStatus {
    /// Wire code.
    pub fn code(self) -> i64 {
        match self {
            ResponseStatus::Successful => 0,
            ResponseStatus::MalformedRequest => 1,
            ResponseStatus::InternalError => 2,
            ResponseStatus::TryLater => 3,
            ResponseStatus::SigRequired => 5,
            ResponseStatus::Unauthorized => 6,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: i64) -> Result<ResponseStatus> {
        Ok(match code {
            0 => ResponseStatus::Successful,
            1 => ResponseStatus::MalformedRequest,
            2 => ResponseStatus::InternalError,
            3 => ResponseStatus::TryLater,
            5 => ResponseStatus::SigRequired,
            6 => ResponseStatus::Unauthorized,
            _ => return Err(Error::ValueOutOfRange),
        })
    }
}

/// A certificate's revocation status as OCSP reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertStatus {
    /// Not revoked. (Does **not** imply within its validity period — the
    /// paper's footnote 4.)
    Good,
    /// Revoked at `time`, optionally with a reason.
    Revoked {
        /// When the certificate was revoked.
        time: Time,
        /// Why, if the responder includes a reason (most do not — §5.4).
        reason: Option<RevocationReason>,
    },
    /// The responder does not know this certificate; clients are free to
    /// try another revocation source (§2.2).
    Unknown,
}

/// One certificate's entry in a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingleResponse {
    /// Which certificate this entry is about.
    pub cert_id: CertId,
    /// Its status.
    pub status: CertStatus,
    /// Start of this entry's validity window.
    pub this_update: Time,
    /// End of the window; `None` ("blank") means newer information is
    /// always available and the response is technically always valid —
    /// the §5.4 cache-poisoning worry.
    pub next_update: Option<Time>,
}

/// The responderID CHOICE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponderId {
    /// byKey: SHA-256 of the responder's public key.
    ByKey([u8; 32]),
}

/// A parsed-and-signed basic OCSP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicResponse {
    /// Who produced the response.
    pub responder_id: ResponderId,
    /// When the responder generated this response (freshness study §5.4).
    pub produced_at: Time,
    /// The per-certificate entries (usually exactly one).
    pub responses: Vec<SingleResponse>,
    /// The exact signed bytes (ResponseData DER).
    pub tbs_der: Vec<u8>,
    /// Signature over `tbs_der`.
    pub signature: Vec<u8>,
    /// Accompanying certificates (delegated signer and/or superfluous
    /// chain padding — Figure 6 counts these).
    pub certs: Vec<Certificate>,
}

/// A complete OCSP response (outer envelope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcspResponse {
    /// The outer status.
    pub status: ResponseStatus,
    /// The signed payload, present only when `status == Successful`.
    pub basic: Option<BasicResponse>,
}

impl OcspResponse {
    /// Build an error response (no payload).
    pub fn error(status: ResponseStatus) -> OcspResponse {
        OcspResponse {
            status,
            basic: None,
        }
    }

    /// Build and sign a successful response.
    ///
    /// `signer` signs the ResponseData; `certs` ride along in the
    /// BasicOCSPResponse `certs` field.
    pub fn successful(
        responder_key: &KeyPair,
        produced_at: Time,
        responses: Vec<SingleResponse>,
        certs: Vec<Certificate>,
    ) -> OcspResponse {
        let responder_id = ResponderId::ByKey(responder_key.public().key_id());
        let tbs_der = encode_response_data(&responder_id, produced_at, &responses);
        let signature = responder_key.sign(&tbs_der);
        OcspResponse {
            status: ResponseStatus::Successful,
            basic: Some(BasicResponse {
                responder_id,
                produced_at,
                responses,
                tbs_der,
                signature,
                certs,
            }),
        }
    }

    /// Encode the full response to DER.
    pub fn to_der(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            enc.enumerated(self.status.code());
            if let Some(basic) = &self.basic {
                enc.explicit(0, |enc| {
                    enc.sequence(|enc| {
                        enc.oid(&Oid::OCSP_BASIC);
                        enc.octet_string_nested(|enc| basic.encode(enc));
                    });
                });
            }
        });
        enc.finish()
    }

    /// Decode from DER.
    pub fn from_der(der: &[u8]) -> Result<OcspResponse> {
        let mut dec = Decoder::new(der);
        let mut outer = dec.sequence()?;
        let status = ResponseStatus::from_code(outer.enumerated()?)?;
        let mut basic = None;
        if let Some(mut wrapper) = outer.optional_explicit(0)? {
            let mut rb = wrapper.sequence()?;
            let rtype = rb.oid()?;
            if rtype != Oid::OCSP_BASIC {
                return Err(Error::ValueOutOfRange);
            }
            let payload = rb.octet_string()?;
            rb.finish()?;
            wrapper.finish()?;
            let mut inner = Decoder::new(payload);
            basic = Some(BasicResponse::decode(&mut inner)?);
            inner.finish()?;
        }
        outer.finish()?;
        dec.finish()?;
        Ok(OcspResponse { status, basic })
    }
}

impl BasicResponse {
    fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|enc| {
            enc.raw(&self.tbs_der);
            enc.sequence(|enc| {
                enc.oid(&Oid::SIM_RSA_SHA256);
                enc.null();
            });
            enc.bit_string(&self.signature);
            if !self.certs.is_empty() {
                enc.explicit(0, |enc| {
                    enc.sequence(|enc| {
                        for cert in &self.certs {
                            enc.raw(&cert.to_der());
                        }
                    });
                });
            }
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<BasicResponse> {
        let mut seq = dec.sequence()?;
        let tbs_der = seq.raw_tlv()?.to_vec();
        let (responder_id, produced_at, responses) = decode_response_data(&tbs_der)?;
        let mut alg = seq.sequence()?;
        if alg.oid()? != Oid::SIM_RSA_SHA256 {
            return Err(Error::ValueOutOfRange);
        }
        alg.null()?;
        alg.finish()?;
        let signature = seq.bit_string()?.to_vec();
        let mut certs = Vec::new();
        if let Some(mut wrapper) = seq.optional_explicit(0)? {
            let mut list = wrapper.sequence()?;
            while !list.is_empty() {
                let raw = list.raw_tlv()?;
                certs.push(Certificate::from_der(raw)?);
            }
            wrapper.finish()?;
        }
        seq.finish()?;
        Ok(BasicResponse {
            responder_id,
            produced_at,
            responses,
            tbs_der,
            signature,
            certs,
        })
    }

    /// Verify the signature with a given public key.
    pub fn verify_signature(&self, key: &simcrypto::PublicKey) -> bool {
        key.verify(&self.tbs_der, &self.signature).is_ok()
    }
}

/// Encode ResponseData (the signed portion).
pub fn encode_response_data(
    responder_id: &ResponderId,
    produced_at: Time,
    responses: &[SingleResponse],
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.sequence(|enc| {
        let ResponderId::ByKey(key_hash) = responder_id;
        enc.explicit(2, |enc| enc.octet_string(key_hash));
        enc.generalized_time(produced_at);
        enc.sequence(|enc| {
            for sr in responses {
                encode_single(enc, sr);
            }
        });
    });
    enc.finish()
}

fn encode_single(enc: &mut Encoder, sr: &SingleResponse) {
    enc.sequence(|enc| {
        sr.cert_id.encode(enc);
        match &sr.status {
            CertStatus::Good => enc.implicit_primitive(0, &[]),
            CertStatus::Revoked { time, reason } => {
                enc.implicit_constructed(1, |enc| {
                    enc.generalized_time(*time);
                    if let Some(reason) = reason {
                        enc.explicit(0, |enc| enc.enumerated(reason.code()));
                    }
                });
            }
            CertStatus::Unknown => enc.implicit_primitive(2, &[]),
        }
        enc.generalized_time(sr.this_update);
        if let Some(nu) = sr.next_update {
            enc.explicit(0, |enc| enc.generalized_time(nu));
        }
    });
}

type ResponseDataParts = (ResponderId, Time, Vec<SingleResponse>);

fn decode_response_data(tbs_der: &[u8]) -> Result<ResponseDataParts> {
    let mut dec = Decoder::new(tbs_der);
    let mut seq = dec.sequence()?;
    let mut by_key = seq.explicit(2)?;
    let key_hash: [u8; 32] = by_key
        .octet_string()?
        .try_into()
        .map_err(|_| Error::ValueOutOfRange)?;
    by_key.finish()?;
    let produced_at = seq.generalized_time()?;
    let mut list = seq.sequence()?;
    let mut responses = Vec::new();
    while !list.is_empty() {
        responses.push(decode_single(&mut list)?);
    }
    seq.finish()?;
    dec.finish()?;
    Ok((ResponderId::ByKey(key_hash), produced_at, responses))
}

fn decode_single(dec: &mut Decoder<'_>) -> Result<SingleResponse> {
    let mut seq = dec.sequence()?;
    let cert_id = CertId::decode(&mut seq)?;
    let status = match seq.peek_tag() {
        Some(t) if t == Tag::context_primitive(0) => {
            let content = seq.expect(Tag::context_primitive(0))?;
            if !content.is_empty() {
                return Err(Error::ValueOutOfRange);
            }
            CertStatus::Good
        }
        Some(t) if t == Tag::context(1) => {
            let mut info = seq.explicit(1)?;
            let time = info.generalized_time()?;
            let mut reason = None;
            if let Some(mut wrapper) = info.optional_explicit(0)? {
                reason = Some(
                    RevocationReason::from_code(wrapper.enumerated()?)
                        .map_err(|_| Error::ValueOutOfRange)?,
                );
                wrapper.finish()?;
            }
            info.finish()?;
            CertStatus::Revoked { time, reason }
        }
        Some(t) if t == Tag::context_primitive(2) => {
            seq.expect(Tag::context_primitive(2))?;
            CertStatus::Unknown
        }
        Some(found) => {
            return Err(Error::UnexpectedTag {
                expected: 0x80,
                found: found.0,
            });
        }
        None => return Err(Error::Truncated),
    };
    let this_update = seq.generalized_time()?;
    let next_update = match seq.optional_explicit(0)? {
        Some(mut wrapper) => {
            let nu = wrapper.generalized_time()?;
            wrapper.finish()?;
            Some(nu)
        }
        None => None,
    };
    seq.finish()?;
    Ok(SingleResponse {
        cert_id,
        status,
        this_update,
        next_update,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pki::Serial;
    use rand::{rngs::StdRng, SeedableRng};

    fn t(h: u8) -> Time {
        Time::from_civil(2018, 5, 1, h, 0, 0)
    }

    fn key() -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(5), 384)
    }

    fn sample_id(serial: u64) -> CertId {
        CertId {
            issuer_name_hash: [0x11; 32],
            issuer_key_hash: [0x22; 32],
            serial: Serial::from_u64(serial),
        }
    }

    fn single(serial: u64, status: CertStatus) -> SingleResponse {
        SingleResponse {
            cert_id: sample_id(serial),
            status,
            this_update: t(0),
            next_update: Some(t(12)),
        }
    }

    #[test]
    fn good_response_round_trip_and_verify() {
        let kp = key();
        let resp = OcspResponse::successful(&kp, t(1), vec![single(7, CertStatus::Good)], vec![]);
        let der = resp.to_der();
        let back = OcspResponse::from_der(&der).unwrap();
        assert_eq!(back, resp);
        let basic = back.basic.unwrap();
        assert!(basic.verify_signature(kp.public()));
        assert_eq!(basic.responses[0].status, CertStatus::Good);
        assert_eq!(basic.produced_at, t(1));
    }

    #[test]
    fn revoked_with_reason_round_trip() {
        let kp = key();
        let status = CertStatus::Revoked {
            time: t(3),
            reason: Some(RevocationReason::KeyCompromise),
        };
        let resp = OcspResponse::successful(&kp, t(4), vec![single(8, status.clone())], vec![]);
        let back = OcspResponse::from_der(&resp.to_der()).unwrap();
        assert_eq!(back.basic.unwrap().responses[0].status, status);
    }

    #[test]
    fn revoked_without_reason_round_trip() {
        let kp = key();
        let status = CertStatus::Revoked {
            time: t(3),
            reason: None,
        };
        let resp = OcspResponse::successful(&kp, t(4), vec![single(8, status.clone())], vec![]);
        let back = OcspResponse::from_der(&resp.to_der()).unwrap();
        assert_eq!(back.basic.unwrap().responses[0].status, status);
    }

    #[test]
    fn unknown_status_round_trip() {
        let kp = key();
        let resp =
            OcspResponse::successful(&kp, t(4), vec![single(9, CertStatus::Unknown)], vec![]);
        let back = OcspResponse::from_der(&resp.to_der()).unwrap();
        assert_eq!(back.basic.unwrap().responses[0].status, CertStatus::Unknown);
    }

    #[test]
    fn blank_next_update_round_trip() {
        let kp = key();
        let mut sr = single(10, CertStatus::Good);
        sr.next_update = None;
        let resp = OcspResponse::successful(&kp, t(4), vec![sr], vec![]);
        let back = OcspResponse::from_der(&resp.to_der()).unwrap();
        assert_eq!(back.basic.unwrap().responses[0].next_update, None);
    }

    #[test]
    fn multi_serial_response() {
        // 3.3% of responders in the paper always return 20 serials.
        let kp = key();
        let singles: Vec<_> = (0..20).map(|i| single(i, CertStatus::Good)).collect();
        let resp = OcspResponse::successful(&kp, t(4), singles, vec![]);
        let back = OcspResponse::from_der(&resp.to_der()).unwrap();
        assert_eq!(back.basic.unwrap().responses.len(), 20);
    }

    #[test]
    fn error_statuses_have_no_payload() {
        for status in [
            ResponseStatus::MalformedRequest,
            ResponseStatus::InternalError,
            ResponseStatus::TryLater,
            ResponseStatus::SigRequired,
            ResponseStatus::Unauthorized,
        ] {
            let resp = OcspResponse::error(status);
            let back = OcspResponse::from_der(&resp.to_der()).unwrap();
            assert_eq!(back.status, status);
            assert!(back.basic.is_none());
        }
    }

    #[test]
    fn certs_ride_along() {
        use pki::{CertificateAuthority, IssueParams};
        let mut rng = StdRng::seed_from_u64(9);
        let mut ca = CertificateAuthority::new_root(&mut rng, "CA", "R", "ca.test", t(0));
        let leaf = ca.issue(&mut rng, &IssueParams::new("x.example", t(0)));
        let kp = key();
        let resp = OcspResponse::successful(
            &kp,
            t(4),
            vec![single(11, CertStatus::Good)],
            vec![leaf.clone(), ca.certificate().clone()],
        );
        let back = OcspResponse::from_der(&resp.to_der()).unwrap();
        let basic = back.basic.unwrap();
        assert_eq!(basic.certs.len(), 2);
        assert_eq!(basic.certs[0], leaf);
    }

    #[test]
    fn paper_observed_garbage_is_unparseable() {
        // §5.3: responders returning "0", empty bodies, or JavaScript.
        assert!(OcspResponse::from_der(b"0").is_err());
        assert!(OcspResponse::from_der(b"").is_err());
        assert!(OcspResponse::from_der(b"<html><script>var x=1;</script></html>").is_err());
    }

    #[test]
    fn tampered_signature_detected() {
        let kp = key();
        let resp = OcspResponse::successful(&kp, t(1), vec![single(7, CertStatus::Good)], vec![]);
        let mut basic = resp.basic.clone().unwrap();
        basic.signature[3] ^= 0x10;
        assert!(!basic.verify_signature(kp.public()));
    }

    #[test]
    fn status_codes_round_trip() {
        for code in [0i64, 1, 2, 3, 5, 6] {
            assert_eq!(ResponseStatus::from_code(code).unwrap().code(), code);
        }
        assert!(ResponseStatus::from_code(4).is_err());
        assert!(ResponseStatus::from_code(7).is_err());
    }
}
