//! Client-side OCSP response validation.
//!
//! [`validate_response`] performs every check a careful TLS client makes
//! before trusting a response, and classifies failures with the paper's
//! taxonomy:
//!
//! * §5.3 "Validity" errors — **malformed structure** (not parseable
//!   DER), **serial number mismatch**, **incorrect signature** (under the
//!   issuer key or a properly delegated responder certificate);
//! * §5.4 "Quality" errors — **not yet valid** (`thisUpdate` in the
//!   future relative to the client clock; zero-margin responders trip
//!   clients with slightly slow clocks) and **expired**
//!   (`nextUpdate` in the past).
//!
//! A *blank* `nextUpdate` is accepted (RFC 6960 allows it) but surfaced
//! in [`ValidatedResponse::blank_next_update`], since the paper flags it
//! as a caching hazard.

use crate::certid::CertId;
use crate::response::{BasicResponse, CertStatus, OcspResponse, ResponseStatus};
use asn1::Time;
use pki::Certificate;
use std::collections::HashMap;
use telemetry::catalog;

/// Memo for the signature-verification stage.
///
/// The stage's outcome is a pure function of (issuer key, signed bytes,
/// attached certificates) — all captured by the key (issuer key id,
/// SHA-256 of the raw response body) — so each distinct signed response
/// pays big-integer modexp once per cache, not once per
/// vantage-point × hour. Time-window checks are *not* memoized; they
/// depend on the receive time and always rerun.
///
/// Scan pipelines hold one cache per shard (or per work chunk), keeping
/// the memo deterministic and thread-local.
#[derive(Debug, Default)]
pub struct SigVerifyCache {
    entries: HashMap<([u8; 32], [u8; 32]), Result<(), ResponseError>>,
}

impl SigVerifyCache {
    /// An empty cache.
    pub fn new() -> SigVerifyCache {
        SigVerifyCache::default()
    }

    /// Number of distinct (issuer, body) signature outcomes memoized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// How the client validates (clock model).
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidationConfig {
    /// Offset of the client's clock from true time, in seconds. Negative
    /// = slow clock. The paper's Figure 9 analysis is about zero-margin
    /// responses meeting slow clocks.
    pub clock_skew: i64,
    /// Whether to require a `nextUpdate` (strict clients may refuse
    /// never-expiring responses; default false, as real clients accept).
    pub require_next_update: bool,
}

/// Why a response was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseError {
    /// Body is not parseable OCSP DER (Figure 5's dominant class —
    /// includes the `"0"`, empty, and JavaScript bodies).
    MalformedStructure,
    /// Outer status was not `successful`.
    ErrorStatus(ResponseStatus),
    /// The response was `successful` but carried no basic response.
    MissingPayload,
    /// No single response matches the requested serial (Figure 5's
    /// second class).
    SerialMismatch,
    /// Signature did not verify under the issuer key or an acceptable
    /// delegate (Figure 5's third class).
    SignatureInvalid,
    /// A delegated signer certificate was present but not issued by the
    /// certificate's issuer, or lacks the OCSP-signing EKU.
    UntrustedDelegate,
    /// `thisUpdate` is after the client's current time.
    NotYetValid {
        /// Seconds until the response becomes valid.
        early_by: i64,
    },
    /// `nextUpdate` is before the client's current time.
    Expired {
        /// Seconds since expiry.
        late_by: i64,
    },
    /// `require_next_update` was set and the response has none.
    BlankNextUpdate,
}

impl core::fmt::Display for ResponseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ResponseError::MalformedStructure => write!(f, "malformed OCSP response structure"),
            ResponseError::ErrorStatus(s) => write!(f, "OCSP error status {s:?}"),
            ResponseError::MissingPayload => write!(f, "successful status without payload"),
            ResponseError::SerialMismatch => write!(f, "no response for the requested serial"),
            ResponseError::SignatureInvalid => write!(f, "OCSP signature invalid"),
            ResponseError::UntrustedDelegate => write!(f, "untrusted delegated OCSP signer"),
            ResponseError::NotYetValid { early_by } => {
                write!(f, "response not yet valid ({early_by}s early)")
            }
            ResponseError::Expired { late_by } => write!(f, "response expired ({late_by}s ago)"),
            ResponseError::BlankNextUpdate => write!(f, "response has no nextUpdate"),
        }
    }
}

impl ResponseError {
    /// Stable telemetry label for this error class (one per
    /// error-taxonomy variant, prefixed `err.` to keep them apart from
    /// the `ok` label in a shared counter namespace).
    pub fn metric_label(&self) -> &'static str {
        match self {
            ResponseError::MalformedStructure => "err.malformed_structure",
            ResponseError::ErrorStatus(_) => "err.error_status",
            ResponseError::MissingPayload => "err.missing_payload",
            ResponseError::SerialMismatch => "err.serial_mismatch",
            ResponseError::SignatureInvalid => "err.signature_invalid",
            ResponseError::UntrustedDelegate => "err.untrusted_delegate",
            ResponseError::NotYetValid { .. } => "err.not_yet_valid",
            ResponseError::Expired { .. } => "err.expired",
            ResponseError::BlankNextUpdate => "err.blank_next_update",
        }
    }
}

impl std::error::Error for ResponseError {}

/// The distilled result of a successful validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidatedResponse {
    /// The certificate's status.
    pub status: CertStatus,
    /// When the response was produced.
    pub produced_at: Time,
    /// Window start.
    pub this_update: Time,
    /// Window end (`None` = blank).
    pub next_update: Option<Time>,
    /// Whether `nextUpdate` was blank (the §5.4 caching hazard).
    pub blank_next_update: bool,
    /// Total certificates attached to the response (Figure 6 metric).
    pub cert_count: usize,
    /// Total serials answered (Figure 7 metric).
    pub serial_count: usize,
    /// Margin between `thisUpdate` and the *true* receive time — the
    /// Figure 9 metric (negative means future-dated).
    pub this_update_margin: i64,
}

impl ValidatedResponse {
    /// Validity period in seconds, or `None` for blank `nextUpdate`
    /// (plotted as ∞ in Figure 8).
    pub fn validity_period(&self) -> Option<i64> {
        self.next_update.map(|nu| nu - self.this_update)
    }

    /// How long a client may cache this response from `now`.
    pub fn cacheable_for(&self, now: Time) -> Option<i64> {
        self.next_update.map(|nu| (nu - now).max(0))
    }
}

/// Validate `body` as the answer to a request about `cert_id`, issued by
/// `issuer`, received at true time `received_at`, through a client with
/// `config`.
pub fn validate_response(
    body: &[u8],
    cert_id: &CertId,
    issuer: &Certificate,
    received_at: Time,
    config: ValidationConfig,
) -> Result<ValidatedResponse, ResponseError> {
    validate_with_sig_cache(body, cert_id, issuer, received_at, config, None)
}

/// [`validate_response`] with an optional signature-verification memo.
/// A hit skips the modexp-heavy signature stage entirely; hits and
/// misses are counted under `ocsp.validate.sigcache` in the registry
/// paired with the cache.
pub fn validate_with_sig_cache(
    body: &[u8],
    cert_id: &CertId,
    issuer: &Certificate,
    received_at: Time,
    config: ValidationConfig,
    cache: Option<(&mut SigVerifyCache, &mut telemetry::Registry)>,
) -> Result<ValidatedResponse, ResponseError> {
    let response = OcspResponse::from_der(body).map_err(|_| ResponseError::MalformedStructure)?;
    if response.status != ResponseStatus::Successful {
        return Err(ResponseError::ErrorStatus(response.status));
    }
    let basic = response
        .basic
        .as_ref()
        .ok_or(ResponseError::MissingPayload)?;

    // Find the single response answering our serial.
    let single = basic
        .responses
        .iter()
        .find(|sr| sr.cert_id.serial == cert_id.serial)
        .ok_or(ResponseError::SerialMismatch)?;

    // Signature stage, optionally memoized on (issuer key id, body
    // digest): the outcome depends only on the signed bytes and the
    // issuer, never on the receive time.
    match cache {
        Some((cache, reg)) => {
            let key = (issuer.public_key().key_id(), simcrypto::sha256(body));
            match cache.entries.get(&key) {
                Some(outcome) => {
                    reg.incr(catalog::OCSP_VALIDATE_SIGCACHE, "hit");
                    outcome.clone()?;
                }
                None => {
                    reg.incr(catalog::OCSP_VALIDATE_SIGCACHE, "miss");
                    let outcome = verify_signature_stage(basic, issuer);
                    cache.entries.insert(key, outcome.clone());
                    outcome?;
                }
            }
        }
        None => verify_signature_stage(basic, issuer)?,
    }

    // Time window, as seen through the client's (possibly skewed) clock.
    let client_now = received_at + config.clock_skew;
    if single.this_update > client_now {
        return Err(ResponseError::NotYetValid {
            early_by: single.this_update - client_now,
        });
    }
    match single.next_update {
        Some(nu) => {
            if nu < client_now {
                return Err(ResponseError::Expired {
                    late_by: client_now - nu,
                });
            }
        }
        None => {
            if config.require_next_update {
                return Err(ResponseError::BlankNextUpdate);
            }
        }
    }

    Ok(ValidatedResponse {
        status: single.status.clone(),
        produced_at: basic.produced_at,
        this_update: single.this_update,
        next_update: single.next_update,
        blank_next_update: single.next_update.is_none(),
        cert_count: basic.certs.len(),
        serial_count: basic.responses.len(),
        this_update_margin: received_at - single.this_update,
    })
}

/// Signature check: directly under the issuer key, or under a delegate
/// that (a) is signed by the issuer and (b) carries id-kp-OCSPSigning.
/// Separated out so [`SigVerifyCache`] can memoize exactly this stage.
fn verify_signature_stage(
    basic: &BasicResponse,
    issuer: &Certificate,
) -> Result<(), ResponseError> {
    if basic.verify_signature(issuer.public_key()) {
        return Ok(());
    }
    let delegate = basic
        .certs
        .iter()
        .find(|c| c.allows_ocsp_signing() && basic.verify_signature(c.public_key()));
    match delegate {
        Some(delegate) => {
            if !delegate.verify_signature(issuer.public_key()) {
                return Err(ResponseError::UntrustedDelegate);
            }
            Ok(())
        }
        None => {
            // Any certs present but none fit? Distinguish "a cert
            // claims to sign but is not delegated" from plain bad sig.
            let signer_without_eku = basic
                .certs
                .iter()
                .any(|c| basic.verify_signature(c.public_key()) && !c.allows_ocsp_signing());
            if signer_without_eku {
                return Err(ResponseError::UntrustedDelegate);
            }
            Err(ResponseError::SignatureInvalid)
        }
    }
}

/// [`validate_response`] plus telemetry: counts the outcome under
/// `(metric, label)` where the label is `ok` or the error's
/// [`ResponseError::metric_label`].
///
/// `metric` is caller-supplied so each pipeline gets its own counter
/// namespace (e.g. `scan.hourly.validate` vs `scan.consistency.validate`)
/// and cross-checks against per-pipeline figures stay exact.
pub fn validate_response_with(
    reg: &mut telemetry::Registry,
    metric: &str,
    body: &[u8],
    cert_id: &CertId,
    issuer: &Certificate,
    received_at: Time,
    config: ValidationConfig,
) -> Result<ValidatedResponse, ResponseError> {
    let result = validate_response(body, cert_id, issuer, received_at, config);
    let label = match &result {
        Ok(_) => "ok",
        Err(err) => err.metric_label(),
    };
    reg.incr(metric, label);
    result
}

/// [`validate_response_with`] plus a signature-verification memo: the
/// outcome counter is identical to the uncached path (so per-pipeline
/// cross-checks are unaffected), and `ocsp.validate.sigcache.{hit,miss}`
/// records the memo's effectiveness separately.
#[allow(clippy::too_many_arguments)]
pub fn validate_response_cached(
    reg: &mut telemetry::Registry,
    metric: &str,
    cache: &mut SigVerifyCache,
    body: &[u8],
    cert_id: &CertId,
    issuer: &Certificate,
    received_at: Time,
    config: ValidationConfig,
) -> Result<ValidatedResponse, ResponseError> {
    let result = validate_with_sig_cache(
        body,
        cert_id,
        issuer,
        received_at,
        config,
        Some((cache, reg)),
    );
    let label = match &result {
        Ok(_) => "ok",
        Err(err) => err.metric_label(),
    };
    reg.incr(metric, label);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{MalformMode, ResponderProfile};
    use crate::request::OcspRequest;
    use crate::responder::Responder;
    use pki::{CertificateAuthority, IssueParams, RevocationReason};
    use rand::{rngs::StdRng, SeedableRng};

    fn now() -> Time {
        Time::from_civil(2018, 5, 1, 12, 0, 0)
    }

    struct Fixture {
        ca: CertificateAuthority,
        leaf: Certificate,
        id: CertId,
    }

    fn fixture(seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ca = CertificateAuthority::new_root(&mut rng, "CA", "Root", "ca.test", now());
        let leaf = ca.issue(&mut rng, &IssueParams::new("v.example", now()));
        let id = CertId::for_certificate(&leaf, ca.certificate());
        Fixture { ca, leaf, id }
    }

    fn fetch(f: &Fixture, profile: ResponderProfile, at: Time) -> Vec<u8> {
        let mut responder = Responder::new("u", profile);
        responder.handle(&f.ca, &OcspRequest::single(f.id.clone()), at)
    }

    fn check(
        f: &Fixture,
        profile: ResponderProfile,
        config: ValidationConfig,
    ) -> Result<ValidatedResponse, ResponseError> {
        let body = fetch(f, profile, now());
        validate_response(&body, &f.id, f.ca.certificate(), now(), config)
    }

    /// `check` for profiles that must validate cleanly (fixture invariant).
    fn check_ok(
        f: &Fixture,
        profile: ResponderProfile,
        config: ValidationConfig,
    ) -> ValidatedResponse {
        check(f, profile, config).expect("fixture response must validate cleanly")
    }

    #[test]
    fn healthy_response_validates() {
        let f = fixture(1);
        let v = check_ok(&f, ResponderProfile::healthy(), ValidationConfig::default());
        assert_eq!(v.status, CertStatus::Good);
        assert_eq!(v.this_update_margin, 3_600);
        assert_eq!(v.validity_period(), Some(7 * 86_400));
        assert!(!v.blank_next_update);
        assert_eq!(v.serial_count, 1);
        assert_eq!(v.cert_count, 0);
        let _ = &f.leaf;
    }

    #[test]
    fn revoked_status_passes_validation() {
        let mut f = fixture(2);
        f.ca.revoke(
            f.leaf.serial(),
            now() - 50,
            Some(RevocationReason::Superseded),
        );
        let v = check_ok(&f, ResponderProfile::healthy(), ValidationConfig::default());
        assert!(matches!(v.status, CertStatus::Revoked { .. }));
    }

    #[test]
    fn malformed_bodies_classified() {
        let f = fixture(3);
        for mode in [
            MalformMode::LiteralZero,
            MalformMode::Empty,
            MalformMode::JavascriptPage,
            MalformMode::TruncatedDer,
        ] {
            let err = check(
                &f,
                ResponderProfile::healthy().malformed(mode),
                ValidationConfig::default(),
            )
            .unwrap_err();
            assert_eq!(err, ResponseError::MalformedStructure, "{mode:?}");
        }
    }

    #[test]
    fn serial_mismatch_classified() {
        let f = fixture(4);
        let err = check(
            &f,
            ResponderProfile::healthy().wrong_serial(),
            ValidationConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, ResponseError::SerialMismatch);
    }

    #[test]
    fn bad_signature_classified() {
        let f = fixture(5);
        let err = check(
            &f,
            ResponderProfile::healthy().corrupt_signature(),
            ValidationConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, ResponseError::SignatureInvalid);
    }

    #[test]
    fn zero_margin_fails_slow_clock_only() {
        let f = fixture(6);
        // Zero margin + accurate clock: fine.
        check_ok(
            &f,
            ResponderProfile::healthy().margin(0),
            ValidationConfig::default(),
        );
        // Zero margin + clock 30 s slow: rejected as not yet valid.
        let err = check(
            &f,
            ResponderProfile::healthy().margin(0),
            ValidationConfig {
                clock_skew: -30,
                require_next_update: false,
            },
        )
        .unwrap_err();
        assert_eq!(err, ResponseError::NotYetValid { early_by: 30 });
        // Healthy margin + slow clock: fine.
        check_ok(
            &f,
            ResponderProfile::healthy(),
            ValidationConfig {
                clock_skew: -30,
                require_next_update: false,
            },
        );
    }

    #[test]
    fn future_this_update_fails_even_accurate_clocks() {
        let f = fixture(7);
        let err = check(
            &f,
            ResponderProfile::healthy().margin(-120),
            ValidationConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, ResponseError::NotYetValid { early_by: 120 });
    }

    #[test]
    fn expired_response_rejected() {
        let f = fixture(8);
        // Fetch at `now`, validate a day after the 2h validity lapsed.
        let body = fetch(&f, ResponderProfile::healthy().validity(7_200), now());
        let later = now() + 86_400;
        let err = validate_response(
            &body,
            &f.id,
            f.ca.certificate(),
            later,
            ValidationConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ResponseError::Expired {
                late_by: 86_400 - (7_200 - 3_600)
            }
        );
    }

    #[test]
    fn blank_next_update_accepted_by_default_rejected_when_strict() {
        let f = fixture(9);
        let v = check_ok(
            &f,
            ResponderProfile::healthy().blank_next_update(),
            ValidationConfig::default(),
        );
        assert!(v.blank_next_update);
        assert_eq!(v.validity_period(), None);
        assert_eq!(v.cacheable_for(now()), None);

        let err = check(
            &f,
            ResponderProfile::healthy().blank_next_update(),
            ValidationConfig {
                clock_skew: 0,
                require_next_update: true,
            },
        )
        .unwrap_err();
        assert_eq!(err, ResponseError::BlankNextUpdate);
    }

    #[test]
    fn error_status_classified() {
        let f = fixture(10);
        // Ask about a foreign issuer to trigger Unauthorized.
        let foreign = CertId {
            issuer_name_hash: [1; 32],
            issuer_key_hash: [2; 32],
            serial: pki::Serial::from_u64(3),
        };
        let mut responder = Responder::new("u", ResponderProfile::healthy());
        let body = responder.handle(&f.ca, &OcspRequest::single(foreign.clone()), now());
        let err = validate_response(
            &body,
            &foreign,
            f.ca.certificate(),
            now(),
            Default::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ResponseError::ErrorStatus(ResponseStatus::Unauthorized)
        );
    }

    #[test]
    fn delegated_signature_validates() {
        let mut f = fixture(11);
        let mut rng = StdRng::seed_from_u64(50);
        let (cert, key) = f.ca.issue_ocsp_signer(&mut rng, now());
        let mut responder =
            Responder::with_delegated_signer("u", ResponderProfile::healthy(), cert, key);
        let body = responder.handle(&f.ca, &OcspRequest::single(f.id.clone()), now());
        let v = validate_response(&body, &f.id, f.ca.certificate(), now(), Default::default())
            .expect("delegated response must validate against the issuing CA");
        assert_eq!(v.status, CertStatus::Good);
        assert_eq!(v.cert_count, 1);
    }

    #[test]
    fn delegate_from_wrong_ca_rejected() {
        let f = fixture(12);
        let mut rng = StdRng::seed_from_u64(51);
        // Delegate issued by an unrelated CA.
        let mut other =
            CertificateAuthority::new_root(&mut rng, "Evil", "Evil Root", "e.test", now());
        let (cert, key) = other.issue_ocsp_signer(&mut rng, now());
        let mut responder =
            Responder::with_delegated_signer("u", ResponderProfile::healthy(), cert, key);
        let body = responder.handle(&f.ca, &OcspRequest::single(f.id.clone()), now());
        let err = validate_response(&body, &f.id, f.ca.certificate(), now(), Default::default())
            .unwrap_err();
        assert_eq!(err, ResponseError::UntrustedDelegate);
        let _ = f.ca.issued_count();
    }

    #[test]
    fn instrumented_validation_counts_per_variant() {
        let f = fixture(20);
        let mut reg = telemetry::Registry::new();
        let metric = "scan.test.validate";

        let ok_body = fetch(&f, ResponderProfile::healthy(), now());
        validate_response_with(
            &mut reg,
            metric,
            &ok_body,
            &f.id,
            f.ca.certificate(),
            now(),
            ValidationConfig::default(),
        )
        .expect("healthy body must validate");

        let malformed = fetch(
            &f,
            ResponderProfile::healthy().malformed(MalformMode::Empty),
            now(),
        );
        for _ in 0..2 {
            validate_response_with(
                &mut reg,
                metric,
                &malformed,
                &f.id,
                f.ca.certificate(),
                now(),
                ValidationConfig::default(),
            )
            .unwrap_err();
        }

        let bad_sig = fetch(&f, ResponderProfile::healthy().corrupt_signature(), now());
        validate_response_with(
            &mut reg,
            metric,
            &bad_sig,
            &f.id,
            f.ca.certificate(),
            now(),
            ValidationConfig::default(),
        )
        .unwrap_err();

        assert_eq!(reg.counter(metric, "ok"), 1);
        assert_eq!(reg.counter(metric, "err.malformed_structure"), 2);
        assert_eq!(reg.counter(metric, "err.signature_invalid"), 1);
        assert_eq!(reg.counter_total(metric), 4);
    }

    #[test]
    fn sigcache_memoizes_signature_outcomes_only() {
        let f = fixture(21);
        let mut reg = telemetry::Registry::new();
        let mut cache = SigVerifyCache::new();
        let metric = "scan.test.validate";

        // Same signed bytes validated repeatedly: one miss, then hits,
        // with outcomes identical to the uncached path.
        let ok_body = fetch(&f, ResponderProfile::healthy(), now());
        for i in 0..3 {
            let cached = validate_response_cached(
                &mut reg,
                metric,
                &mut cache,
                &ok_body,
                &f.id,
                f.ca.certificate(),
                now() + i,
                ValidationConfig::default(),
            )
            .expect("cached validation of a healthy body must succeed");
            let plain = validate_response(
                &ok_body,
                &f.id,
                f.ca.certificate(),
                now() + i,
                ValidationConfig::default(),
            )
            .expect("uncached validation of a healthy body must succeed");
            assert_eq!(cached, plain);
        }
        assert_eq!(reg.counter("ocsp.validate.sigcache", "miss"), 1);
        assert_eq!(reg.counter("ocsp.validate.sigcache", "hit"), 2);
        assert_eq!(cache.len(), 1);

        // Error outcomes are memoized too.
        let bad_sig = fetch(&f, ResponderProfile::healthy().corrupt_signature(), now());
        for _ in 0..2 {
            let err = validate_response_cached(
                &mut reg,
                metric,
                &mut cache,
                &bad_sig,
                &f.id,
                f.ca.certificate(),
                now(),
                ValidationConfig::default(),
            )
            .unwrap_err();
            assert_eq!(err, ResponseError::SignatureInvalid);
        }
        assert_eq!(reg.counter("ocsp.validate.sigcache", "miss"), 2);
        assert_eq!(reg.counter("ocsp.validate.sigcache", "hit"), 3);

        // Outcome counters match what the uncached wrapper would record.
        assert_eq!(reg.counter(metric, "ok"), 3);
        assert_eq!(reg.counter(metric, "err.signature_invalid"), 2);

        // Unparseable bodies never reach the signature stage or cache.
        let malformed = fetch(
            &f,
            ResponderProfile::healthy().malformed(MalformMode::Empty),
            now(),
        );
        validate_response_cached(
            &mut reg,
            metric,
            &mut cache,
            &malformed,
            &f.id,
            f.ca.certificate(),
            now(),
            ValidationConfig::default(),
        )
        .unwrap_err();
        assert_eq!(cache.len(), 2);
        assert_eq!(reg.counter_total("ocsp.validate.sigcache"), 5);
    }

    #[test]
    fn sigcache_hit_still_reruns_time_window_checks() {
        let f = fixture(22);
        let mut reg = telemetry::Registry::new();
        let mut cache = SigVerifyCache::new();
        let body = fetch(&f, ResponderProfile::healthy().validity(7_200), now());
        validate_response_cached(
            &mut reg,
            "m",
            &mut cache,
            &body,
            &f.id,
            f.ca.certificate(),
            now(),
            ValidationConfig::default(),
        )
        .expect("fresh response must validate");
        // Same bytes, a day later: the sig stage hits but the window
        // check must still reject.
        let err = validate_response_cached(
            &mut reg,
            "m",
            &mut cache,
            &body,
            &f.id,
            f.ca.certificate(),
            now() + 86_400,
            ValidationConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ResponseError::Expired { .. }));
        assert_eq!(reg.counter("ocsp.validate.sigcache", "hit"), 1);
    }

    #[test]
    fn every_error_variant_has_a_distinct_label() {
        let variants = [
            ResponseError::MalformedStructure,
            ResponseError::ErrorStatus(ResponseStatus::Unauthorized),
            ResponseError::MissingPayload,
            ResponseError::SerialMismatch,
            ResponseError::SignatureInvalid,
            ResponseError::UntrustedDelegate,
            ResponseError::NotYetValid { early_by: 1 },
            ResponseError::Expired { late_by: 1 },
            ResponseError::BlankNextUpdate,
        ];
        let labels: std::collections::BTreeSet<&str> =
            variants.iter().map(|v| v.metric_label()).collect();
        assert_eq!(labels.len(), variants.len());
        assert!(labels.iter().all(|l| l.starts_with("err.")));
    }

    #[test]
    fn validity_metrics_exposed() {
        let f = fixture(13);
        let v = check_ok(
            &f,
            ResponderProfile::healthy()
                .validity(30 * 86_400 + 1) // the "over one month" hazard
                .superfluous_certs(3)
                .extra_serials(19),
            ValidationConfig::default(),
        );
        assert_eq!(v.validity_period(), Some(30 * 86_400 + 1));
        assert_eq!(v.cert_count, 3);
        assert_eq!(v.serial_count, 20);
    }
}
