//! CertID — how OCSP names a certificate (RFC 6960 §4.1.1).
//!
//! `CertID ::= SEQUENCE { hashAlgorithm, issuerNameHash OCTET STRING,
//! issuerKeyHash OCTET STRING, serialNumber INTEGER }`. The issuer hashes
//! let the responder verify it actually issued the certificate before
//! answering (the paper's §2.2).

use asn1::{Decoder, Encoder, Error, Oid, Result};
use pki::{Certificate, Serial};

/// An OCSP certificate identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CertId {
    /// SHA-256 of the issuer's DER-encoded distinguished name.
    pub issuer_name_hash: [u8; 32],
    /// SHA-256 of the issuer's public key material.
    pub issuer_key_hash: [u8; 32],
    /// The certificate's serial number.
    pub serial: Serial,
}

impl CertId {
    /// Build the CertID for `cert`, issued by `issuer`.
    pub fn for_certificate(cert: &Certificate, issuer: &Certificate) -> CertId {
        CertId {
            issuer_name_hash: issuer.subject().hash(),
            issuer_key_hash: issuer.public_key().key_id(),
            serial: cert.serial().clone(),
        }
    }

    /// Whether this CertID's issuer hashes match `issuer`.
    pub fn matches_issuer(&self, issuer: &Certificate) -> bool {
        self.issuer_name_hash == issuer.subject().hash()
            && self.issuer_key_hash == issuer.public_key().key_id()
    }

    /// Encode into `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|enc| {
            enc.sequence(|enc| {
                enc.oid(&Oid::SHA256);
                enc.null();
            });
            enc.octet_string(&self.issuer_name_hash);
            enc.octet_string(&self.issuer_key_hash);
            self.serial.encode(enc);
        });
    }

    /// Decode from `dec`.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<CertId> {
        let mut seq = dec.sequence()?;
        let mut alg = seq.sequence()?;
        let oid = alg.oid()?;
        if oid != Oid::SHA256 {
            return Err(Error::ValueOutOfRange);
        }
        alg.null()?;
        alg.finish()?;
        let name_hash = seq.octet_string()?;
        let key_hash = seq.octet_string()?;
        let serial = Serial::decode(&mut seq)?;
        seq.finish()?;
        let issuer_name_hash: [u8; 32] =
            name_hash.try_into().map_err(|_| Error::ValueOutOfRange)?;
        let issuer_key_hash: [u8; 32] = key_hash.try_into().map_err(|_| Error::ValueOutOfRange)?;
        Ok(CertId {
            issuer_name_hash,
            issuer_key_hash,
            serial,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asn1::Time;
    use pki::{CertificateAuthority, IssueParams};
    use rand::{rngs::StdRng, SeedableRng};

    fn now() -> Time {
        Time::from_civil(2018, 4, 25, 0, 0, 0)
    }

    #[test]
    fn build_match_and_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ca = CertificateAuthority::new_root(&mut rng, "CA", "Root", "ca.test", now());
        let mut other =
            CertificateAuthority::new_root(&mut rng, "Other", "Other Root", "o.test", now());
        let leaf = ca.issue(&mut rng, &IssueParams::new("x.example", now()));

        let id = CertId::for_certificate(&leaf, ca.certificate());
        assert!(id.matches_issuer(ca.certificate()));
        assert!(!id.matches_issuer(other.certificate()));
        assert_eq!(&id.serial, leaf.serial());

        let mut enc = Encoder::new();
        id.encode(&mut enc);
        let der = enc.finish();
        let mut dec = Decoder::new(&der);
        let back = CertId::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, id);

        // keep `other` alive so its issue() side effects don't warn
        let _ = other.issue(&mut rng, &IssueParams::new("y.example", now()));
    }

    #[test]
    fn rejects_wrong_hash_sizes() {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            enc.sequence(|enc| {
                enc.oid(&Oid::SHA256);
                enc.null();
            });
            enc.octet_string(&[0u8; 16]); // wrong length
            enc.octet_string(&[0u8; 32]);
            enc.integer_i64(5);
        });
        let der = enc.finish();
        let mut dec = Decoder::new(&der);
        assert!(CertId::decode(&mut dec).is_err());
    }

    #[test]
    fn rejects_unknown_hash_algorithm() {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            enc.sequence(|enc| {
                enc.oid(&Oid::SIM_RSA_SHA256); // not a digest OID
                enc.null();
            });
            enc.octet_string(&[0u8; 32]);
            enc.octet_string(&[0u8; 32]);
            enc.integer_i64(5);
        });
        let der = enc.finish();
        let mut dec = Decoder::new(&der);
        assert!(CertId::decode(&mut dec).is_err());
    }
}
