//! OCSP requests (RFC 6960 §4.1.1).
//!
//! `OCSPRequest ::= SEQUENCE { tbsRequest TBSRequest }` (we omit the
//! optional request signature, which no web client sends).
//! `TBSRequest ::= SEQUENCE { requestList SEQUENCE OF Request,
//! requestExtensions [2] EXPLICIT Extensions OPTIONAL }` with
//! `Request ::= SEQUENCE { reqCert CertID }`.
//!
//! The study's measurement client sends these over HTTP POST, exactly as
//! the paper's methodology describes (§5.1 step 4).

use crate::certid::CertId;
use asn1::{Decoder, Encoder, Oid, Result};

/// An OCSP request: one or more CertIDs plus an optional nonce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcspRequest {
    /// The certificates whose status is being asked.
    pub cert_ids: Vec<CertId>,
    /// Optional nonce (RFC 6960 §4.4.1) for replay protection.
    pub nonce: Option<Vec<u8>>,
}

impl OcspRequest {
    /// A single-certificate request, the overwhelmingly common case.
    pub fn single(cert_id: CertId) -> OcspRequest {
        OcspRequest {
            cert_ids: vec![cert_id],
            nonce: None,
        }
    }

    /// Attach a nonce.
    pub fn with_nonce(mut self, nonce: Vec<u8>) -> OcspRequest {
        self.nonce = Some(nonce);
        self
    }

    /// Encode to DER.
    pub fn to_der(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.sequence(|enc| {
            // TBSRequest
            enc.sequence(|enc| {
                enc.sequence(|enc| {
                    for id in &self.cert_ids {
                        enc.sequence(|enc| id.encode(enc));
                    }
                });
                if let Some(nonce) = &self.nonce {
                    enc.explicit(2, |enc| {
                        enc.sequence(|enc| {
                            enc.sequence(|enc| {
                                enc.oid(&Oid::OCSP_NONCE);
                                enc.octet_string_nested(|enc| enc.octet_string(nonce));
                            });
                        });
                    });
                }
            });
        });
        enc.finish()
    }

    /// Decode from DER.
    pub fn from_der(der: &[u8]) -> Result<OcspRequest> {
        let mut dec = Decoder::new(der);
        let mut outer = dec.sequence()?;
        let mut tbs = outer.sequence()?;
        let mut list = tbs.sequence()?;
        let mut cert_ids = Vec::new();
        while !list.is_empty() {
            let mut req = list.sequence()?;
            cert_ids.push(CertId::decode(&mut req)?);
            req.finish()?;
        }
        let mut nonce = None;
        if let Some(mut exts_wrapper) = tbs.optional_explicit(2)? {
            let mut exts = exts_wrapper.sequence()?;
            while !exts.is_empty() {
                let mut ext = exts.sequence()?;
                let oid = ext.oid()?;
                let payload = ext.octet_string()?;
                ext.finish()?;
                if oid == Oid::OCSP_NONCE {
                    let mut inner = Decoder::new(payload);
                    nonce = Some(inner.octet_string()?.to_vec());
                    inner.finish()?;
                }
            }
            exts_wrapper.finish()?;
        }
        tbs.finish()?;
        outer.finish()?;
        dec.finish()?;
        Ok(OcspRequest { cert_ids, nonce })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pki::Serial;

    fn sample_id(serial: u64) -> CertId {
        CertId {
            issuer_name_hash: [0xaa; 32],
            issuer_key_hash: [0xbb; 32],
            serial: Serial::from_u64(serial),
        }
    }

    #[test]
    fn single_round_trip() {
        let req = OcspRequest::single(sample_id(42));
        let back = OcspRequest::from_der(&req.to_der()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn multi_cert_round_trip() {
        let req = OcspRequest {
            cert_ids: (0..5).map(sample_id).collect(),
            nonce: None,
        };
        let back = OcspRequest::from_der(&req.to_der()).unwrap();
        assert_eq!(back.cert_ids.len(), 5);
    }

    #[test]
    fn nonce_round_trip() {
        let req = OcspRequest::single(sample_id(7)).with_nonce(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let back = OcspRequest::from_der(&req.to_der()).unwrap();
        assert_eq!(back.nonce.as_deref(), Some(&[1u8, 2, 3, 4, 5, 6, 7, 8][..]));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(OcspRequest::from_der(b"GET / HTTP/1.1").is_err());
        assert!(OcspRequest::from_der(&[]).is_err());
    }
}
