//! Property tests for the OCSP wire formats and the responder/validator
//! pair: round-trips over randomized contents, and the invariant that a
//! healthy responder's answer always validates while a mutated answer
//! never validates as authentic.

use asn1::Time;
use mustaple_ocsp::{
    validate_response, CertId, CertStatus, OcspRequest, OcspResponse, Responder, ResponderProfile,
    SingleResponse, ValidationConfig,
};
use pki::{CertificateAuthority, IssueParams, RevocationReason, Serial};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use simcrypto::KeyPair;
use std::cell::OnceCell;

thread_local! {
    static ENV: OnceCell<(CertificateAuthority, CertId, KeyPair)> = const { OnceCell::new() };
}

fn with_env<R>(f: impl FnOnce(&CertificateAuthority, &CertId, &KeyPair) -> R) -> R {
    ENV.with(|cell| {
        let (ca, id, kp) = cell.get_or_init(|| {
            let now = Time::from_civil(2018, 5, 1, 0, 0, 0);
            let mut rng = StdRng::seed_from_u64(0xA11CE);
            let mut ca =
                CertificateAuthority::new_root(&mut rng, "Prop", "Prop Root", "prop.test", now);
            let leaf = ca.issue(&mut rng, &IssueParams::new("prop.example", now));
            let id = CertId::for_certificate(&leaf, ca.certificate());
            let kp = KeyPair::generate(&mut rng, 384);
            (ca, id, kp)
        });
        f(ca, id, kp)
    })
}

fn arb_serial() -> impl Strategy<Value = Serial> {
    proptest::collection::vec(any::<u8>(), 1..20).prop_map(|b| Serial::from_bytes(&b))
}

fn arb_time() -> impl Strategy<Value = Time> {
    (1_400_000_000i64..1_700_000_000).prop_map(Time::from_unix)
}

fn arb_status() -> impl Strategy<Value = CertStatus> {
    prop_oneof![
        Just(CertStatus::Good),
        Just(CertStatus::Unknown),
        (
            arb_time(),
            proptest::option::of(Just(RevocationReason::KeyCompromise))
        )
            .prop_map(|(time, reason)| CertStatus::Revoked { time, reason }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn requests_round_trip(
        serials in proptest::collection::vec(arb_serial(), 1..8),
        nonce in proptest::option::of(proptest::collection::vec(any::<u8>(), 8..32)),
    ) {
        let cert_ids: Vec<CertId> = serials
            .into_iter()
            .map(|serial| CertId {
                issuer_name_hash: [1; 32],
                issuer_key_hash: [2; 32],
                serial,
            })
            .collect();
        let req = OcspRequest { cert_ids, nonce };
        let back = OcspRequest::from_der(&req.to_der()).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn responses_round_trip(
        singles in proptest::collection::vec(
            (arb_serial(), arb_status(), arb_time(), proptest::option::of(0i64..10_000_000)),
            1..6
        ),
        produced in arb_time(),
    ) {
        with_env(|_, _, kp| {
            let responses: Vec<SingleResponse> = singles
                .iter()
                .cloned()
                .map(|(serial, status, this_update, validity)| SingleResponse {
                    cert_id: CertId {
                        issuer_name_hash: [3; 32],
                        issuer_key_hash: [4; 32],
                        serial,
                    },
                    status,
                    this_update,
                    next_update: validity.map(|v| this_update + v),
                })
                .collect();
            let resp = OcspResponse::successful(kp, produced, responses, vec![]);
            let der = resp.to_der();
            let back = OcspResponse::from_der(&der).unwrap();
            prop_assert_eq!(&back, &resp);
            prop_assert!(back.basic.unwrap().verify_signature(kp.public()));
            Ok(())
        })?;
    }

    /// A healthy responder's output always validates at receipt time.
    #[test]
    fn healthy_responses_always_validate(
        validity in 3_600i64..(30 * 86_400),
        margin in 0i64..1_800,
        at_offset in 0i64..(90 * 86_400),
    ) {
        with_env(|ca, id, _| {
            let now = Time::from_civil(2018, 5, 1, 0, 0, 0) + at_offset;
            let mut responder = Responder::new(
                "u",
                ResponderProfile::healthy().validity(validity).margin(margin),
            );
            let body = responder.handle(ca, &OcspRequest::single(id.clone()), now);
            let v = validate_response(&body, id, ca.certificate(), now, ValidationConfig::default());
            let v = match v {
                Ok(v) => v,
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            };
            prop_assert_eq!(v.validity_period(), Some(validity));
            prop_assert_eq!(v.this_update_margin, margin);
            prop_assert_eq!(v.status, CertStatus::Good);
            Ok(())
        })?;
    }

    /// Any single-byte mutation of a healthy response either fails to
    /// parse or fails validation — it can never produce a *different*
    /// accepted answer.
    #[test]
    fn mutated_responses_never_validate_differently(
        idx_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        with_env(|ca, id, _| {
            let now = Time::from_civil(2018, 5, 1, 0, 0, 0);
            let mut responder = Responder::new("u", ResponderProfile::healthy());
            let clean = responder.handle(ca, &OcspRequest::single(id.clone()), now);
            let baseline =
                validate_response(&clean, id, ca.certificate(), now, Default::default()).unwrap();

            let mut body = clean.clone();
            let idx = ((body.len() - 1) as f64 * idx_frac) as usize;
            body[idx] ^= xor;
            if let Ok(v) = validate_response(&body, id, ca.certificate(), now, Default::default()) {
                // Only acceptable if the mutation hit a byte that does
                // not change the decoded content (impossible for DER of
                // this shape except... nothing: assert equality).
                prop_assert_eq!(v, baseline, "mutation at {} xor {:#x} accepted", idx, xor);
            }
            Ok(())
        })?;
    }

    /// Truncation at any point is never accepted.
    #[test]
    fn truncated_responses_rejected(cut_frac in 0.01f64..0.99) {
        with_env(|ca, id, _| {
            let now = Time::from_civil(2018, 5, 1, 0, 0, 0);
            let mut responder = Responder::new("u", ResponderProfile::healthy());
            let clean = responder.handle(ca, &OcspRequest::single(id.clone()), now);
            let cut = ((clean.len() as f64) * cut_frac) as usize;
            let body = &clean[..cut];
            prop_assert!(
                validate_response(body, id, ca.certificate(), now, Default::default()).is_err()
            );
            Ok(())
        })?;
    }

    /// The validator's time window is exact: acceptance flips at the
    /// boundaries.
    #[test]
    fn validity_window_boundaries_are_exact(validity in 3_600i64..86_400) {
        with_env(|ca, id, _| {
            let now = Time::from_civil(2018, 5, 1, 0, 0, 0);
            let mut responder =
                Responder::new("u", ResponderProfile::healthy().margin(0).validity(validity));
            let body = responder.handle(ca, &OcspRequest::single(id.clone()), now);
            let check = |at: Time| {
                validate_response(&body, id, ca.certificate(), at, Default::default())
            };
            prop_assert!(check(now - 1).is_err(), "before thisUpdate");
            prop_assert!(check(now).is_ok(), "at thisUpdate");
            prop_assert!(check(now + validity).is_ok(), "at nextUpdate");
            prop_assert!(check(now + validity + 1).is_err(), "after nextUpdate");
            Ok(())
        })?;
    }
}
